"""Binary serialization of checkpoint entries — the zero-copy save path.

A checkpoint *entry* is a mapping from field names ("master", "m", "v",
"step", ...) to numpy arrays.  We use a small self-describing binary
format rather than pickle so the format is stable, portable, and the byte
counts (which the paper's results are all about) are deterministic:

``MOC1`` magic | u32 field count | per field:
u16 name length | name utf-8 | u8 dtype-string length | dtype utf-8 |
u8 ndim | u64 * ndim shape | u64 payload bytes | raw array bytes.

Save-path data flow
-------------------
The hot path never materializes the serialized stream.
:func:`serialize_entry_frames` yields *frames* — small header ``bytes``
objects interleaved with zero-copy ``memoryview``s over the arrays'
buffers — and :class:`PayloadFrames` wraps them as a rope that the
storage layer consumes directly:

* disk stores write frames with one buffered ``writelines`` (no
  concatenation);
* chunk digests are computed in a **single SHA-256 sweep** over the
  frames (:meth:`PayloadFrames.chunk_digests`), and the entry's content
  digest is derived from the chunk digests
  (:meth:`PayloadFrames.entry_digest`) — so the manager's delta-save
  check and the dedup backend's chunk addressing share one hash pass;
* the async write pipeline snapshots frames into a pooled staging
  buffer with one copy (:meth:`PayloadFrames.snapshot_into`).

:class:`PipelineMeters` counts the bytes serialized / hashed / copied so
tests and ``demo --profile`` can pin the "touch each byte once"
property instead of assuming it.

``serialize_entry`` remains the materializing compatibility wrapper and
is byte-identical to the frame path by construction (the property suite
pins this).
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..obs.metrics import MetricsRegistry

_MAGIC = b"MOC1"

#: Canonical chunking granularity for content digests and the dedup
#: store.  Small enough that a TINY model's entries span several chunks
#: (so partial overlap dedups), large enough that chunk metadata stays a
#: rounding error at GB scale.  (Canonical home; ``repro.ckpt.dedup``
#: re-exports it.)
DEFAULT_CHUNK_BYTES = 64 * 1024

#: Buffers a frame may be: immutable header bytes or array views.
Frame = Union[bytes, memoryview]


class SerializationError(ValueError):
    """Raised for malformed checkpoint payloads."""


class PipelineMeters:
    """Byte counters for the serialize→digest→stage→write pipeline.

    ``bytes_serialized`` counts payload bytes represented as frames
    (headers included — the whole persisted stream), ``bytes_hashed``
    counts bytes fed through SHA-256, and ``bytes_copied`` counts bytes
    memcpy'd (async staging snapshots, materializations).  The save
    pipeline's regression tests pin ``bytes_hashed == bytes_serialized``
    (one hash pass) and one staging copy per persisted byte — counters,
    not assumptions.

    The counters live in a :class:`repro.obs.metrics.MetricsRegistry`
    (a private one by default; pass ``registry=`` to share — the
    manager passes its observer's registry, so a ``--metrics-dump``
    exposes every pinned invariant straight from the registry).  The
    historical attribute/``snapshot()`` API is preserved as a shim over
    the registry counters.

    The upload counters (``bytes_uploaded``/``upload_retries``) are the
    *single source of truth* for the tiered backend: attaching these
    meters to a :class:`~repro.ckpt.tiered.TieredBackend` re-homes the
    tier's own upload accounting onto the same counter objects, so
    ``tier_stats()`` and ``snapshot()`` can never disagree.

    Behind an async write pipeline, increments landing in the *worker*
    thread (e.g. a store hashing an entry the caller didn't pre-digest)
    settle only at a ``flush()`` barrier — snapshot after flushing when
    asserting exact totals.
    """

    _FIELD_COUNTERS = {
        "bytes_serialized": "moc_pipeline_bytes_serialized_total",
        "bytes_hashed": "moc_pipeline_bytes_hashed_total",
        "bytes_copied": "moc_pipeline_bytes_copied_total",
        "bytes_compressed": "moc_pipeline_bytes_compressed_total",
        "bytes_compressed_out": "moc_pipeline_bytes_compressed_out_total",
        "entries_serialized": "moc_pipeline_entries_serialized_total",
        "bytes_uploaded": "moc_tier_bytes_uploaded_total",
        "upload_retries": "moc_tier_upload_retries_total",
    }

    def __init__(self, registry: Optional["MetricsRegistry"] = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self._bytes_serialized = registry.counter(
            "moc_pipeline_bytes_serialized_total",
            "Payload bytes represented as frames (headers included)",
        )
        self._bytes_hashed = registry.counter(
            "moc_pipeline_bytes_hashed_total", "Bytes fed through SHA-256"
        )
        self._bytes_copied = registry.counter(
            "moc_pipeline_bytes_copied_total",
            "Bytes memcpy'd (staging snapshots, materializations)",
        )
        self._bytes_compressed = registry.counter(
            "moc_pipeline_bytes_compressed_total",
            "Raw bytes fed through the chunk codec",
        )
        self._bytes_compressed_out = registry.counter(
            "moc_pipeline_bytes_compressed_out_total",
            "Encoded bytes the chunk codec produced",
        )
        self._entries_serialized = registry.counter(
            "moc_pipeline_entries_serialized_total", "Entries serialized"
        )
        self._bytes_uploaded = registry.counter(
            "moc_tier_bytes_uploaded_total",
            "Bytes uploaded to the remote tier (single source of truth)",
        )
        self._upload_retries = registry.counter(
            "moc_tier_upload_retries_total",
            "Retried (backed-off) remote-tier upload attempts",
        )

    # Attribute shim: the meters predate the registry, and tests read
    # these names directly.
    @property
    def bytes_serialized(self) -> int:
        return int(self._bytes_serialized.value)

    @property
    def bytes_hashed(self) -> int:
        return int(self._bytes_hashed.value)

    @property
    def bytes_copied(self) -> int:
        return int(self._bytes_copied.value)

    @property
    def bytes_compressed(self) -> int:
        return int(self._bytes_compressed.value)

    @property
    def bytes_compressed_out(self) -> int:
        return int(self._bytes_compressed_out.value)

    @property
    def entries_serialized(self) -> int:
        return int(self._entries_serialized.value)

    @property
    def bytes_uploaded(self) -> int:
        return int(self._bytes_uploaded.value)

    @property
    def upload_retries(self) -> int:
        return int(self._upload_retries.value)

    def upload_counters(self):
        """The (bytes_uploaded, upload_retries) counter objects.

        :class:`~repro.ckpt.tiered.TieredBackend` adopts these as its
        own accumulators when meters are attached — one source of truth
        for upload totals instead of the old private-int + meter
        double-count.
        """
        return self._bytes_uploaded, self._upload_retries

    def count_serialized(self, nbytes: int) -> None:
        self._bytes_serialized.inc(nbytes)
        self._entries_serialized.inc()

    def count_hashed(self, nbytes: int) -> None:
        self._bytes_hashed.inc(nbytes)

    def count_copied(self, nbytes: int) -> None:
        self._bytes_copied.inc(nbytes)

    def count_compressed(self, raw_nbytes: int, encoded_nbytes: int) -> None:
        """Record one codec pass: ``raw_nbytes`` in, ``encoded_nbytes`` out.

        ``bytes_compressed`` counts raw bytes fed through the chunk
        codec (the "≤1 compression pass per persisted byte" invariant
        meters this against ``bytes_serialized``); the ``_out`` counter
        is what actually hit the wire, so ratio = in/out.  Worker
        processes report their per-task counts back over the result
        queue and the engine folds them in here — the invariant survives
        the process boundary because it is metered, not assumed.
        """
        self._bytes_compressed.inc(raw_nbytes)
        self._bytes_compressed_out.inc(encoded_nbytes)

    def count_uploaded(self, nbytes: int) -> None:
        """Record one completed remote-tier upload of ``nbytes``."""
        self._bytes_uploaded.inc(nbytes)

    def count_upload_retry(self) -> None:
        """Record one retried (backed-off) remote-tier upload attempt."""
        self._upload_retries.inc()

    def snapshot(self) -> Dict[str, int]:
        return {
            field: int(getattr(self, "_" + field).value)
            for field in self._FIELD_COUNTERS
        }


def _array_data(array: np.ndarray) -> Frame:
    """Zero-copy byte view over a C-contiguous array's buffer.

    0-d arrays materialize their handful of bytes (``memoryview.cast``
    on numpy 0-d buffers is not portable across versions and the copy
    is a few bytes).  Dtypes the buffer protocol refuses to export
    (datetime64/timedelta64) also materialize — the frame path must
    accept everything ``serialize_entry`` always has.
    """
    if array.ndim == 0 or array.nbytes == 0:
        return array.tobytes()
    try:
        return memoryview(array).cast("B")
    except (ValueError, TypeError, BufferError):
        return array.tobytes()


def serialize_entry_frames(entry: Mapping[str, np.ndarray]) -> Iterator[Frame]:
    """Stream an entry as frames: header bytes + zero-copy array views.

    Consecutive header fields coalesce into one ``bytes`` frame; each
    non-empty array contributes a ``memoryview`` aliasing its buffer.
    Frames are valid only while the caller keeps the arrays alive and
    unmutated — the storage layer consumes them synchronously, and the
    async pipeline snapshots them into a staging buffer before
    returning to the caller.

    Concatenated, the frames are byte-identical to
    :func:`serialize_entry`'s output.
    """
    header = bytearray()
    header += _MAGIC
    header += struct.pack("<I", len(entry))
    for name in sorted(entry):
        array = np.asarray(entry[name])
        if array.ndim:
            # ascontiguousarray promotes 0-d to 1-d — only call it when
            # there is a layout to normalize, so scalars keep shape ().
            array = np.ascontiguousarray(array)
        name_bytes = name.encode("utf-8")
        dtype_bytes = array.dtype.str.encode("ascii")
        header += struct.pack("<H", len(name_bytes))
        header += name_bytes
        header += struct.pack("<B", len(dtype_bytes))
        header += dtype_bytes
        header += struct.pack("<B", array.ndim)
        for dim in array.shape:
            header += struct.pack("<Q", dim)
        data = _array_data(array)
        header += struct.pack("<Q", len(data))
        if isinstance(data, bytes):
            header += data  # scalar / empty: folded into the header run
        else:
            yield bytes(header)
            header = bytearray()
            yield data
    if header:
        yield bytes(header)


class PayloadFrames:
    """A serialized entry as a rope of buffers, never concatenated.

    Wraps the output of :func:`serialize_entry_frames` (or any sequence
    of byte buffers) and offers the single-pass operations the storage
    layer needs: chunked SHA-256 digests (cached per chunk size, so the
    delta-save check and the dedup backend share one sweep), windowed
    chunk slices for chunk-file writes, a one-copy snapshot into a
    staging buffer, and materialization for stores that must own bytes.

    ``len(frames)`` is the payload size in bytes, so code metering
    ``len(payload)`` works unchanged for ``bytes`` and frames alike.
    """

    __slots__ = ("frames", "nbytes", "meters", "region", "_digest_cache")

    def __init__(
        self,
        frames: Sequence[Frame],
        meters: Optional[PipelineMeters] = None,
        _digest_cache: Optional[Dict[int, List[str]]] = None,
    ) -> None:
        normalized: List[Frame] = []
        nbytes = 0
        for frame in frames:
            if not isinstance(frame, (bytes, memoryview)):
                frame = memoryview(frame)
            if isinstance(frame, memoryview) and (
                frame.format != "B" or frame.ndim != 1
            ):
                frame = frame.cast("B")
            if len(frame) == 0:
                continue
            normalized.append(frame)
            nbytes += len(frame)
        self.frames = tuple(normalized)
        self.nbytes = nbytes
        self.meters = meters
        # Set when the rope's single frame lives inside a shared-memory
        # staging arena (see ``repro.ckpt.parallel.SharedStagingPool``):
        # lets the parallel engine hand workers an (arena, offset, len)
        # address instead of pickling payload bytes.
        self.region = None
        # chunk size -> chunk digests, computed at most once per size.
        self._digest_cache: Dict[int, List[str]] = (
            _digest_cache if _digest_cache is not None else {}
        )

    @classmethod
    def from_entry(
        cls,
        entry: Mapping[str, np.ndarray],
        meters: Optional[PipelineMeters] = None,
    ) -> "PayloadFrames":
        frames = cls(list(serialize_entry_frames(entry)), meters=meters)
        if meters is not None:
            meters.count_serialized(frames.nbytes)
        return frames

    def __len__(self) -> int:
        return self.nbytes

    def tobytes(self) -> bytes:
        """Materialize the payload (a copy — off the hot path)."""
        data = b"".join(self.frames)
        if self.meters is not None:
            self.meters.count_copied(len(data))
        return data

    def chunk_digests(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> List[str]:
        """SHA-256 hex digest per fixed-size chunk, in one sweep.

        Matches ``[chunk_digest(c) for c in chunk_payload(payload)]``
        exactly (an empty payload has one empty chunk).  Results are
        cached per chunk size and shared across copies made by
        :meth:`snapshot_into`, so a payload is hashed **once** no matter
        how many layers (delta-save check, dedup chunking) need the
        digests.
        """
        cached = self._digest_cache.get(chunk_bytes)
        if cached is not None:
            return cached
        # One sweep over the same windows the write path uses — sharing
        # :meth:`chunk_slices` keeps digest and chunk-data boundaries
        # aligned by construction.
        digests: List[str] = []
        for parts in self.chunk_slices(chunk_bytes):
            digest = hashlib.sha256()
            for part in parts:
                digest.update(part)
            digests.append(digest.hexdigest())
        if self.meters is not None:
            self.meters.count_hashed(self.nbytes)
        self._digest_cache[chunk_bytes] = digests
        return digests

    def peek_digests(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> Optional[List[str]]:
        """Return cached chunk digests without computing (None if absent)."""
        return self._digest_cache.get(chunk_bytes)

    def seed_digests(self, chunk_bytes: int, digests: List[str]) -> None:
        """Install externally computed chunk digests into the cache.

        The parallel save engine computes digests in worker processes
        and seeds them here so every downstream consumer (delta-save
        check, dedup chunk addressing) still sees a single hash pass.
        The caller is responsible for metering the hash bytes it spent.
        """
        self._digest_cache[chunk_bytes] = list(digests)

    def entry_digest(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> str:
        """Content digest derived from the chunk digests.

        A digest-of-chunk-digests, so deriving it after
        :meth:`chunk_digests` costs ~32 bytes of hashing per chunk
        instead of a second pass over the payload.  Two entries share a
        digest iff their serialized payloads are identical (at a fixed
        chunk size).
        """
        digest = hashlib.sha256()
        for chunk in self.chunk_digests(chunk_bytes):
            digest.update(bytes.fromhex(chunk))
        return digest.hexdigest()

    def chunk_slices(
        self, chunk_bytes: int = DEFAULT_CHUNK_BYTES
    ) -> Iterator[List[Frame]]:
        """Yield each fixed-size chunk as a list of zero-copy buffer parts.

        Windows align with :meth:`chunk_digests`; a chunk spanning a
        frame boundary is several parts (``writelines`` them).  An empty
        payload yields one empty chunk.
        """
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        parts: List[Frame] = []
        filled = 0
        yielded = False
        for frame in self.frames:
            view = frame if isinstance(frame, memoryview) else memoryview(frame)
            while len(view):
                take = min(chunk_bytes - filled, len(view))
                parts.append(view[:take])
                filled += take
                view = view[take:]
                if filled == chunk_bytes:
                    yield parts
                    yielded = True
                    parts = []
                    filled = 0
        if parts or not yielded:
            yield parts

    def snapshot_into(self, buffer) -> "PayloadFrames":
        """Copy the frames into ``buffer`` (one pass) and return a new
        rope over the copy.

        The staging copy of the async write pipeline: the returned rope
        no longer aliases the caller's arrays (mutation-safe), is
        read-only, and **shares the digest cache**, so digests computed
        before staging are never recomputed downstream.

        ``buffer`` is anything exporting the buffer protocol (the
        classic pooled ``bytearray``) or a shared-memory slice exposing
        ``.view``/``.region`` (``SharedStagingPool.acquire``); in the
        latter case the returned rope carries the slice's region so
        downstream layers can address the staged bytes cross-process.
        """
        region = getattr(buffer, "region", None)
        view = buffer.view if hasattr(buffer, "view") else memoryview(buffer)
        if len(view) < self.nbytes:
            raise ValueError(
                f"staging buffer too small: {len(view)} < {self.nbytes}"
            )
        offset = 0
        for frame in self.frames:
            end = offset + len(frame)
            view[offset:end] = frame
            offset = end
        if self.meters is not None:
            self.meters.count_copied(self.nbytes)
        staged = PayloadFrames(
            [view[: self.nbytes].toreadonly()],
            meters=self.meters,
            _digest_cache=self._digest_cache,
        )
        staged.region = region
        return staged


def write_payload(handle, payload: Union[bytes, PayloadFrames]) -> None:
    """Write a payload to a binary file handle without concatenating.

    Frames go out in a single buffered ``writelines``; plain bytes in
    one ``write``.  The helper every disk-backed store routes through.
    """
    if isinstance(payload, PayloadFrames):
        handle.writelines(payload.frames)
    else:
        handle.write(payload)


def payload_bytes(payload: Union[bytes, bytearray, memoryview, PayloadFrames]) -> bytes:
    """Materialize any accepted payload form as immutable bytes."""
    if isinstance(payload, PayloadFrames):
        return payload.tobytes()
    if isinstance(payload, bytes):
        return payload
    return bytes(payload)


def serialize_entry(entry: Mapping[str, np.ndarray]) -> bytes:
    """Encode a field->array mapping to bytes.

    Compatibility wrapper over the frame path; byte-identical to the
    concatenated output of :func:`serialize_entry_frames`.
    """
    return b"".join(serialize_entry_frames(entry))


def deserialize_entry(
    data: Union[bytes, bytearray, memoryview], copy: bool = True
) -> Dict[str, np.ndarray]:
    """Decode bytes produced by :func:`serialize_entry`.

    ``copy=True`` (default) returns arrays owning their data — always
    writable.  ``copy=False`` returns zero-copy ``frombuffer`` views
    into ``data``: no per-field allocation, but the arrays inherit the
    buffer's mutability (read-only for ``bytes``), so callers handing
    them to training must go through a writability guard
    (:func:`writable_entry`, or any copying assignment).
    """
    view = memoryview(data)
    if view.format != "B" or view.ndim != 1:
        view = view.cast("B")
    size = len(view)
    pos = 4
    if size < 4 or bytes(view[:4]) != _MAGIC:
        magic = bytes(view[: min(4, size)])
        raise SerializationError(f"bad magic {magic!r}")

    def take(nbytes: int) -> memoryview:
        nonlocal pos
        if pos + nbytes > size:
            raise SerializationError(
                f"truncated payload: wanted {nbytes}, got {size - pos}"
            )
        out = view[pos : pos + nbytes]
        pos += nbytes
        return out

    (count,) = struct.unpack("<I", take(4))
    result: Dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = struct.unpack("<H", take(2))
        name = bytes(take(name_len)).decode("utf-8")
        (dtype_len,) = struct.unpack("<B", take(1))
        dtype = np.dtype(bytes(take(dtype_len)).decode("ascii"))
        (ndim,) = struct.unpack("<B", take(1))
        shape = tuple(struct.unpack("<Q", take(8))[0] for _ in range(ndim))
        (nbytes,) = struct.unpack("<Q", take(8))
        payload = take(nbytes)
        array = np.frombuffer(payload, dtype=dtype).reshape(shape)
        result[name] = array.copy() if copy else array
    if pos != size:
        raise SerializationError("trailing bytes after final field")
    return result


def writable_entry(entry: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Guard for zero-copy reads: copy exactly the read-only arrays.

    Arrays from ``deserialize_entry(..., copy=False)`` view an immutable
    buffer; training code mutates restored state in place, so anything
    non-writable is copied here (and nothing else — the guard costs
    bytes only where mutability is actually missing).
    """
    guarded: Dict[str, np.ndarray] = {}
    for name, value in entry.items():
        array = np.asarray(value)
        guarded[name] = array if array.flags.writeable else array.copy()
    return guarded


def entry_nbytes(entry: Mapping[str, np.ndarray]) -> int:
    """Raw payload bytes of an entry (excluding format framing)."""
    return int(sum(np.asarray(v).nbytes for v in entry.values()))


def entry_digest(entry: Mapping[str, np.ndarray]) -> str:
    """SHA-256 content digest of an entry, without materializing it.

    Runs the single-pass frame pipeline at the canonical chunk size:
    the digest covers exactly the bytes :func:`serialize_entry` would
    emit, so two entries share a digest iff their serialized payloads
    are identical.  Callers that will also *store* the entry should
    prefer :meth:`PayloadFrames.entry_digest` on a shared rope so the
    same sweep feeds the storage layer's chunk addressing.
    """
    return PayloadFrames.from_entry(entry).entry_digest()
