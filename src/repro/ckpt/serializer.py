"""Binary serialization of checkpoint entries.

A checkpoint *entry* is a mapping from field names ("master", "m", "v",
"step", ...) to numpy arrays.  We use a small self-describing binary
format rather than pickle so the format is stable, portable, and the byte
counts (which the paper's results are all about) are deterministic:

``MOC1`` magic | u32 field count | per field:
u16 name length | name utf-8 | u8 dtype-string length | dtype utf-8 |
u8 ndim | u64 * ndim shape | u64 payload bytes | raw array bytes.
"""

from __future__ import annotations

import io
import struct
from typing import Dict, Mapping

import numpy as np

_MAGIC = b"MOC1"


class SerializationError(ValueError):
    """Raised for malformed checkpoint payloads."""


def serialize_entry(entry: Mapping[str, np.ndarray]) -> bytes:
    """Encode a field->array mapping to bytes."""
    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(struct.pack("<I", len(entry)))
    for name in sorted(entry):
        array = np.asarray(entry[name])
        if array.ndim:
            # ascontiguousarray promotes 0-d to 1-d — only call it when
            # there is a layout to normalize, so scalars keep shape ().
            array = np.ascontiguousarray(array)
        name_bytes = name.encode("utf-8")
        dtype_bytes = array.dtype.str.encode("ascii")
        out.write(struct.pack("<H", len(name_bytes)))
        out.write(name_bytes)
        out.write(struct.pack("<B", len(dtype_bytes)))
        out.write(dtype_bytes)
        out.write(struct.pack("<B", array.ndim))
        for dim in array.shape:
            out.write(struct.pack("<Q", dim))
        payload = array.tobytes()
        out.write(struct.pack("<Q", len(payload)))
        out.write(payload)
    return out.getvalue()


def deserialize_entry(data: bytes) -> Dict[str, np.ndarray]:
    """Decode bytes produced by :func:`serialize_entry`."""
    view = io.BytesIO(data)
    magic = view.read(4)
    if magic != _MAGIC:
        raise SerializationError(f"bad magic {magic!r}")
    (count,) = struct.unpack("<I", _read(view, 4))
    result: Dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = struct.unpack("<H", _read(view, 2))
        name = _read(view, name_len).decode("utf-8")
        (dtype_len,) = struct.unpack("<B", _read(view, 1))
        dtype = np.dtype(_read(view, dtype_len).decode("ascii"))
        (ndim,) = struct.unpack("<B", _read(view, 1))
        shape = tuple(
            struct.unpack("<Q", _read(view, 8))[0] for _ in range(ndim)
        )
        (nbytes,) = struct.unpack("<Q", _read(view, 8))
        payload = _read(view, nbytes)
        array = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
        result[name] = array
    trailing = view.read(1)
    if trailing:
        raise SerializationError("trailing bytes after final field")
    return result


def _read(view: io.BytesIO, size: int) -> bytes:
    data = view.read(size)
    if len(data) != size:
        raise SerializationError(f"truncated payload: wanted {size}, got {len(data)}")
    return data


def entry_nbytes(entry: Mapping[str, np.ndarray]) -> int:
    """Raw payload bytes of an entry (excluding format framing)."""
    return int(sum(np.asarray(v).nbytes for v in entry.values()))


def entry_digest(entry: Mapping[str, np.ndarray]) -> str:
    """SHA-256 content digest of an entry, without serializing it.

    Hashes the same information :func:`serialize_entry` encodes (field
    names, dtypes, shapes, raw bytes, in sorted field order), so two
    entries share a digest iff their serialized payloads are identical
    — but skips building the payload, which is what makes the manager's
    delta-save check cheap enough to run on every entry.
    """
    import hashlib

    digest = hashlib.sha256()
    for name in sorted(entry):
        array = np.asarray(entry[name])
        if array.ndim:
            array = np.ascontiguousarray(array)
        digest.update(name.encode("utf-8"))
        digest.update(array.dtype.str.encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()
