"""Two-level tiered checkpoint backend: write-back local + remote object tier.

The paper's two-level scheme — a fast local tier absorbing every
checkpoint write, a durable remote object tier holding every stamp —
existed here only as a cost model.  :class:`TieredBackend` makes it a
real :class:`~repro.ckpt.backend.CheckpointBackend` composing any two
existing backends:

* **Write-back puts.**  A put lands in the local tier synchronously and
  returns; a bounded background upload pipeline drains it to the remote
  tier with retry / per-upload timeout / exponential backoff.  Training
  never waits on remote latency.
* **Crash-consistent promotion/demotion journal** (``tier.jsonl``,
  reusing the dedup engine's :class:`~repro.ckpt.dedup._JsonlJournal`
  torn-tail discipline).  The ordering is leak-only, mirroring the
  dedup engine's: the ``up`` record claiming a remote copy is appended
  strictly *after* the remote put returns, and local eviction happens
  strictly *after* that claim is durable.  Every crash window therefore
  leaks at most a redundant upload or an unclaimed remote copy
  (*warnings* ``fsck`` reports and ``gc`` reclaims) — never a claimed
  copy that does not exist (the only *error*), and never an evicted
  entry without a durable remote copy.
* **Read-through with hedged remote reads.**  A get serves from local;
  on a local miss (an evicted stamp) it reads remote, launching a
  second, hedged request when the first exceeds ``hedge_after_seconds``
  — first success wins.  Remote reads retry transient
  :class:`RemoteUnavailable` faults with the same backoff policy as
  uploads, and (by default) promote the payload back into the local
  tier.
* **Per-tier retention.**  ``local_keep_stamps=k`` keeps the newest k
  stamps locally and every stamp remote: ``flush()`` demotes older,
  remote-durable entries (journal record first, local delete second).

:class:`SimulatedObjectStore` wraps any backend into a remote-object
tier with configurable per-op latency and a seeded fault-injection rate
(raising :class:`RemoteUnavailable`), so retry/backoff behaviour and
the write-back latency win are testable — and benchmarkable —
deterministically on a laptop.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..io.scheduler import (
    IOLane,
    IOScheduler,
    IOTaskCancelled,
    IOTaskTimeout,
    QoS,
    get_scheduler,
)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import span as _span
from .backend import CheckpointBackend, CrashInjected, KVStoreError, Payload
from .dedup import _JsonlJournal


class RemoteUnavailable(RuntimeError):
    """A transient remote-tier failure (the retryable kind)."""


class DecorrelatedJitterBackoff:
    """Decorrelated-jitter retry delays (the AWS architecture-blog recipe).

    Pure ``base * 2**n`` backoff synchronizes retry storms: when the
    remote flaps, every upload worker that failed in the same window
    sleeps the same deterministic delay and they all stampede back at
    once.  Decorrelated jitter breaks the phase lock —

        ``delay = min(cap, uniform(base, prev * 3))``

    — each worker's next delay is drawn around its own previous one, so
    a cohort of simultaneous failures spreads out instead of re-colliding.
    ``jitter=False`` restores the legacy pure-exponential schedule
    (tests that pin exact sleep sequences use it), and ``seed`` makes
    the jittered schedule reproducible.  Thread-safe: the RNG draw is
    guarded so concurrent upload workers do not interleave the stream
    mid-draw (each still gets an independent draw, which is the point).
    """

    def __init__(
        self,
        base_seconds: float,
        cap_seconds: float,
        seed: Optional[int] = None,
        jitter: bool = True,
    ) -> None:
        if base_seconds < 0 or cap_seconds < 0:
            raise ValueError("backoff durations must be non-negative")
        self.base_seconds = base_seconds
        self.cap_seconds = cap_seconds
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def next_delay(self, previous: Optional[float], attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based); ``previous`` is the
        last delay this caller slept, or ``None`` on its first retry."""
        if not self.jitter:
            return min(self.cap_seconds, self.base_seconds * (2 ** (attempt - 1)))
        anchor = self.base_seconds if previous is None else previous
        with self._lock:
            draw = self._rng.uniform(
                self.base_seconds, max(self.base_seconds, anchor * 3.0)
            )
        return min(self.cap_seconds, draw)


class SimulatedObjectStore(CheckpointBackend):
    """Decorate a backend into a latency/fault-injectable remote tier.

    Payload operations (put / read / delete) sleep ``latency_seconds``
    and then fail with :class:`RemoteUnavailable` at ``fault_rate``
    probability.  Fault placement is *interleaving-independent*: each
    draw is derived by hashing ``(seed, op, key, attempt#)`` rather
    than consumed from a shared RNG stream, so whether the Nth ``put``
    of a given key faults does not depend on which upload worker thread
    got there first — two same-seed runs inject the identical fault
    set even under concurrent workers (the historical shared
    ``random.Random`` made seeded runs racy).  The per-(op, key)
    attempt counter and the ``fault_log`` are guarded by the store
    lock.  Metadata queries (stamps, sizes, listings) delegate
    directly: object stores serve those from their index tier.
    """

    def __init__(
        self,
        inner: CheckpointBackend,
        latency_seconds: float = 0.0,
        fault_rate: float = 0.0,
        seed: int = 0x5EED,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__()
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError("fault_rate must be in [0, 1)")
        self.inner = inner
        self.latency_seconds = latency_seconds
        self.fault_rate = fault_rate
        self.seed = seed
        self._sim_lock = threading.Lock()
        self._attempts: Dict[Tuple[str, str], int] = {}
        #: Every injected fault as ``(op, key, attempt#)`` — sorted, this
        #: is identical across same-seed runs regardless of threading.
        self.fault_log: List[Tuple[str, str, int]] = []
        if registry is None:
            registry = MetricsRegistry()
        self._c_ops = registry.counter(
            "moc_remote_ops_total", "Simulated remote-tier payload operations"
        )
        self._c_faults = registry.counter(
            "moc_remote_faults_total", "Injected transient remote faults"
        )

    @property
    def ops(self) -> int:
        return int(self._c_ops.value)

    @property
    def faults_injected(self) -> int:
        return int(self._c_faults.value)

    def _draw(self, op: str, key: str, attempt: int) -> float:
        token = f"{self.seed}:{op}:{key}:{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _simulate(self, op: str, key: str) -> None:
        if self.latency_seconds > 0:
            time.sleep(self.latency_seconds)
        self._c_ops.inc()
        with self._sim_lock:
            attempt = self._attempts.get((op, key), 0) + 1
            self._attempts[(op, key)] = attempt
            inject = self._draw(op, key, attempt) < self.fault_rate
            if inject:
                self.fault_log.append((op, key, attempt))
        if inject:
            self._c_faults.inc()
            raise RemoteUnavailable(
                f"injected remote fault during {op} of {key!r} (attempt {attempt})"
            )

    # -- payload ops (latency + faults) ---------------------------------
    def _write(self, key: str, payload: Payload, stamp: int, node) -> None:
        self._simulate("put", key)
        self.inner.put_serialized(key, payload, stamp, node)

    def _read(self, key: str) -> bytes:
        self._simulate("get", key)
        return self.inner._read(key)

    def delete(self, key: str) -> None:
        self._simulate("delete", key)
        self.inner.delete(key)

    # -- metadata (direct) ----------------------------------------------
    def stamp_of(self, key: str) -> int:
        return self.inner.stamp_of(key)

    def nbytes_of(self, key: str) -> int:
        return self.inner.nbytes_of(key)

    def has(self, key: str) -> bool:
        return self.inner.has(key)

    def keys(self) -> List[str]:
        return self.inner.keys()

    def total_bytes(self) -> int:
        return self.inner.total_bytes()

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()


@dataclass
class TieredFsckReport:
    """Outcome of a :meth:`TieredBackend.fsck` pass over both tiers.

    A journal claim whose remote copy is missing or stale is an
    *error* — it is exactly the window the write ordering exists to
    close (eviction trusts claims).  Pending uploads (local ahead of
    remote) and unclaimed remote copies are *warnings*: every crash
    window in the upload pipeline leaks at most those, and
    ``flush``/``gc`` reclaims them.  Nested per-tier reports (when a
    tier supports ``fsck``) roll up into ``errors``/``warnings``.
    """

    keys_checked: int = 0
    claims_checked: int = 0
    lost_remote_copies: List[str] = field(default_factory=list)
    stale_remote_copies: List[str] = field(default_factory=list)
    pending_uploads: List[str] = field(default_factory=list)
    orphan_remote_keys: List[str] = field(default_factory=list)
    local_report: Optional[object] = None
    remote_report: Optional[object] = None
    repaired: bool = False

    @property
    def errors(self) -> List[str]:
        out = [f"claimed remote copy missing: {key}" for key in self.lost_remote_copies]
        out += [f"claimed remote copy stale: {key}" for key in self.stale_remote_copies]
        for report in (self.local_report, self.remote_report):
            if report is not None:
                out += list(report.errors)
        return out

    @property
    def warnings(self) -> List[str]:
        out = [f"pending upload: {key}" for key in self.pending_uploads]
        out += [f"unclaimed remote copy: {key}" for key in self.orphan_remote_keys]
        for report in (self.local_report, self.remote_report):
            if report is not None:
                out += list(report.warnings)
        return out

    @property
    def ok(self) -> bool:
        return not self.errors


@dataclass(frozen=True)
class TieredGCReport:
    """What one :meth:`TieredBackend.gc` pass reclaimed."""

    remote_keys_reclaimed: int
    remote_bytes_reclaimed: int
    journal_records_compacted: int
    local_report: Optional[object] = None


class TieredBackend(CheckpointBackend):
    """Write-back local tier + retrying remote tier behind one contract.

    ``upload_workers >= 1`` runs the upload pipeline as ``UPLOAD``-class
    tasks on the shared I/O scheduler, fan-out bounded by a lane (puts
    block only when ``upload_queue_depth`` *distinct* keys are already
    waiting — backpressure, not loss);
    ``upload_workers=0`` uploads inline during the put, which is what
    the crash-injection battery uses: every seam then fires on the
    caller thread, so the arm-hook/abandon/reopen pattern is
    deterministic.

    Upload claim discipline (the leak-only ordering)::

        local put (tier's own durability)        <- put returns here
          -> remote put (retry w/ backoff)
            -> journal {"op": "up", ...}         <- claim: remote IS durable
              -> journal {"op": "demote", ...}
                -> local delete                  <- eviction: claim IS durable

    Crashing between any two steps leaks at most a pending upload or an
    unclaimed remote copy — fsck warnings — never a claim without a
    remote copy and never an evicted entry that was not claimed.
    """

    _fault_hook_value: Optional[Callable[[str], None]] = None

    def __init__(
        self,
        local: CheckpointBackend,
        remote: CheckpointBackend,
        journal_path: str,
        upload_workers: int = 1,
        upload_queue_depth: int = 64,
        upload_max_retries: int = 8,
        upload_timeout_seconds: float = 120.0,
        backoff_base_seconds: float = 0.02,
        backoff_max_seconds: float = 1.0,
        backoff_jitter: bool = True,
        backoff_seed: Optional[int] = None,
        hedge_after_seconds: Optional[float] = 0.25,
        remote_read_retries: int = 4,
        local_keep_stamps: Optional[int] = None,
        promote_on_read: bool = True,
        meters: Optional[object] = None,
        registry: Optional[MetricsRegistry] = None,
        scheduler: Optional[IOScheduler] = None,
    ) -> None:
        super().__init__()
        if upload_workers < 0:
            raise ValueError("upload_workers must be >= 0")
        if upload_queue_depth < 1:
            raise ValueError("upload_queue_depth must be >= 1")
        if local_keep_stamps is not None and local_keep_stamps < 1:
            raise ValueError("local_keep_stamps must be >= 1")
        self.local = local
        self.remote = remote
        self.upload_workers = upload_workers
        self.upload_queue_depth = upload_queue_depth
        self.upload_max_retries = upload_max_retries
        self.upload_timeout_seconds = upload_timeout_seconds
        self.backoff_base_seconds = backoff_base_seconds
        self.backoff_max_seconds = backoff_max_seconds
        self.backoff = DecorrelatedJitterBackoff(
            backoff_base_seconds,
            backoff_max_seconds,
            seed=backoff_seed,
            jitter=backoff_jitter,
        )
        self.hedge_after_seconds = hedge_after_seconds
        self.remote_read_retries = remote_read_retries
        self.local_keep_stamps = local_keep_stamps
        self.promote_on_read = promote_on_read

        # All tier state below is guarded by _state_lock; the journal is
        # append-only and not internally locked, so appends take the
        # lock too (they also serialize against the delete/claim race —
        # see _upload_once).
        self._state_lock = threading.RLock()
        self._cond = threading.Condition(self._state_lock)
        self._journal = _JsonlJournal(journal_path, "tier", self._fault)
        #: key -> (stamp, nbytes) claimed durable on the remote tier.
        self._remote_claims: Dict[str, Tuple[int, int]] = {}
        #: Keys sitting in the upload queue (dedupe) / being uploaded.
        self._queued: Set[str] = set()
        self._inflight: Set[str] = set()
        #: key -> last exhausted-retries error (still pending; flush retries).
        self._upload_failures: Dict[str, str] = {}
        self._closed = False

        # Counters live on a metrics registry (a private one unless the
        # caller shares one), so increments from concurrent upload
        # workers are atomic by construction — no bare ints under (or
        # escaping) the state lock.  The historical attribute names
        # (``self.upload_retries`` etc.) are read-only properties.
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self._c_uploads_completed = registry.counter(
            "moc_tier_uploads_completed_total", "Uploads claimed remote-durable"
        )
        self._c_upload_retries = registry.counter(
            "moc_tier_upload_retries_total",
            "Retried (backed-off) remote-tier upload attempts",
        )
        self._c_uploads_failed = registry.counter(
            "moc_tier_uploads_failed_total", "Uploads that exhausted their retries"
        )
        self._c_bytes_uploaded = registry.counter(
            "moc_tier_bytes_uploaded_total",
            "Bytes uploaded to the remote tier (single source of truth)",
        )
        self._c_remote_reads = registry.counter(
            "moc_tier_remote_reads_total", "Remote-tier read attempts"
        )
        self._c_hedged_reads = registry.counter(
            "moc_tier_hedged_reads_total", "Remote reads that launched a hedge"
        )
        self._c_read_retries = registry.counter(
            "moc_tier_read_retries_total", "Retried remote-tier reads"
        )
        self._c_promotions = registry.counter(
            "moc_tier_promotions_total", "Read-through promotions into the local tier"
        )
        self._c_demotions = registry.counter(
            "moc_tier_demotions_total", "Retention demotions out of the local tier"
        )
        #: Optional :class:`~repro.ckpt.serializer.PipelineMeters`; the
        #: manager attaches its own, which *re-homes* the upload
        #: byte/retry counters onto the meters' registry so ``demo
        #: --profile``, ``tier_stats()`` and a ``--metrics-dump`` all
        #: read the very same counter objects.
        self._meters: Optional[object] = None
        self.meters = meters

        for record in self._journal.replay():
            op = record.get("op")
            if op == "up":
                self._remote_claims[str(record["key"])] = (
                    int(record["stamp"]),
                    int(record["nbytes"]),
                )
            elif op == "del":
                self._remote_claims.pop(str(record["key"]), None)
            # "demote"/"promote" records are movement history only: the
            # local tier's own index is the source of truth for what is
            # local, so replay does not need them.

        # Upload pipeline: `UPLOAD`-class submissions on the shared
        # :class:`~repro.io.scheduler.IOScheduler`, fan-out bounded by a
        # named lane (was: private daemon threads + a bounded key
        # queue).  The scheduler is resolved lazily when neither the
        # upload pipeline nor a hedged read needs it — inline mode with
        # hedging off never touches it.
        self._scheduler: Optional[IOScheduler] = scheduler
        self._upload_lane: Optional[IOLane] = None
        if upload_workers > 0:
            self._upload_lane = self._io_scheduler().lane(
                f"tier-upload-{id(self):x}", upload_workers
            )

        # Resume: anything local that crashed before its claim became
        # durable re-enters the pipeline (idempotent re-upload).
        for key in self.pending_uploads():
            self._schedule_upload(key)

    # -- counters (registry-backed; attribute names are the legacy API) --
    @property
    def uploads_completed(self) -> int:
        return int(self._c_uploads_completed.value)

    @property
    def upload_retries(self) -> int:
        return int(self._c_upload_retries.value)

    @property
    def uploads_failed(self) -> int:
        return int(self._c_uploads_failed.value)

    @property
    def bytes_uploaded(self) -> int:
        return int(self._c_bytes_uploaded.value)

    @property
    def remote_reads(self) -> int:
        return int(self._c_remote_reads.value)

    @property
    def hedged_reads(self) -> int:
        return int(self._c_hedged_reads.value)

    @property
    def read_retries(self) -> int:
        return int(self._c_read_retries.value)

    @property
    def promotions(self) -> int:
        return int(self._c_promotions.value)

    @property
    def demotions(self) -> int:
        return int(self._c_demotions.value)

    @property
    def meters(self) -> Optional[object]:
        return self._meters

    @meters.setter
    def meters(self, value: Optional[object]) -> None:
        """Attach pipeline meters — and adopt their upload counters.

        The old seam double-counted: ``_upload_once`` bumped a private
        int *and* called ``meters.count_uploaded()``.  Now attaching
        meters swaps the tier's upload byte/retry counters for the
        meters' own registry counters (carrying over anything already
        accumulated), so there is exactly one accumulator per total no
        matter who reads it.
        """
        self._meters = value
        counters_of = getattr(value, "upload_counters", None)
        if counters_of is None:
            return
        bytes_counter, retries_counter = counters_of()
        with self._state_lock:
            if bytes_counter is not self._c_bytes_uploaded:
                carried = self._c_bytes_uploaded.value
                if carried:
                    bytes_counter.inc(carried)
                self._c_bytes_uploaded = bytes_counter
            if retries_counter is not self._c_upload_retries:
                carried = self._c_upload_retries.value
                if carried:
                    retries_counter.inc(carried)
                self._c_upload_retries = retries_counter

    # -- fault-hook propagation -----------------------------------------
    @property
    def fault_hook(self):
        return self._fault_hook_value

    @fault_hook.setter
    def fault_hook(self, hook) -> None:
        # The crash battery sets one hook on the composed store; the
        # tiers' own seams (chunk/manifest/journal/payload points) must
        # fire through it too.
        self._fault_hook_value = hook
        self.local.fault_hook = hook
        self.remote.fault_hook = hook
        inner = getattr(self.remote, "inner", None)
        if inner is not None:
            inner.fault_hook = hook

    # -- delegated surface ----------------------------------------------
    @property
    def digest_chunk_bytes(self) -> int:
        return self.local.digest_chunk_bytes

    @property
    def staging_pool(self):
        """The local tier's shared staging pool, when it has one — so
        the async pipeline's staging copy still lands once, in shared
        memory, with a dedup local tier."""
        return getattr(self.local, "staging_pool", None)

    # -- write path ------------------------------------------------------
    def _write(self, key: str, payload: Payload, stamp: int, node) -> None:
        self.local.put_serialized(key, payload, stamp, node)
        self._schedule_upload(key)

    def put_many_serialized(self, items) -> List[int]:
        try:
            sizes = self.local.put_many_serialized(items)
        finally:
            # On a mid-batch error the local tier journals the completed
            # prefix; schedule uploads for whatever actually landed.
            for key, _payload, _stamp, _node in items:
                if self.local.has(key):
                    self._schedule_upload(key)
        with self._meter_lock:
            for nbytes in sizes:
                self.bytes_written += nbytes
                self.put_count += 1
        return sizes

    # -- upload pipeline -------------------------------------------------
    def pending_uploads(self) -> List[str]:
        """Keys whose local content is not yet claimed remote-durable."""
        return sorted(key for key in self.local.keys() if self._pending(key))

    def _pending(self, key: str) -> bool:
        try:
            state = (self.local.stamp_of(key), self.local.nbytes_of(key))
        except KVStoreError:
            return False
        with self._state_lock:
            return self._remote_claims.get(key) != state

    def _io_scheduler(self) -> IOScheduler:
        scheduler = self._scheduler
        if scheduler is None:
            scheduler = self._scheduler = get_scheduler()
        return scheduler

    def _schedule_upload(self, key: str, requeue: bool = False) -> None:
        if self.upload_workers == 0:
            # Inline mode: upload now, on the caller thread.  A crash
            # seam firing here propagates out of the put — the process
            # died mid-upload, exactly what the battery models.
            self._upload_with_retry(key)
            return
        scheduler = self._io_scheduler()
        with self._cond:
            if not requeue and not scheduler.is_worker_thread():
                # Backpressure: block the producer while
                # ``upload_queue_depth`` distinct keys are already
                # waiting.  Never block a scheduler worker against its
                # own pool, and never block the self-requeue path — an
                # upload that finished but left the key pending.
                while (
                    not self._closed
                    and key not in self._queued
                    and key not in self._inflight
                    and len(self._queued) >= self.upload_queue_depth
                ):
                    self._cond.wait(0.05)
            if self._closed or key in self._queued or key in self._inflight:
                # An inflight upload re-checks pending state when it
                # finishes and requeues itself if this put outran it.
                return
            self._queued.add(key)
        try:
            nbytes = self.local.nbytes_of(key)
        except KVStoreError:
            nbytes = 0
        try:
            scheduler.submit(
                lambda: self._run_upload(key),
                QoS.UPLOAD,
                nbytes=nbytes,
                label="tier-upload",
                lane=self._upload_lane,
                fault=self._fault,
                on_abandon=lambda _error: self._abandon_upload(key),
            )
        except BaseException:
            self._abandon_upload(key)
            raise

    def _abandon_upload(self, key: str) -> None:
        """An upload task died before its body ran (cancelled queued
        task, shutdown, or a crash seam at dispatch): the key simply
        stays pending — the next flush re-drives it."""
        with self._cond:
            self._queued.discard(key)
            self._cond.notify_all()

    def _run_upload(self, key: str) -> None:
        with self._cond:
            self._queued.discard(key)
            if self._closed:
                self._cond.notify_all()
                return
            self._inflight.add(key)
        try:
            self._upload_with_retry(key)
        except Exception:  # noqa: BLE001 - task must settle quietly
            pass
        finally:
            requeue = False
            with self._cond:
                self._inflight.discard(key)
                if (
                    not self._closed
                    and key not in self._queued
                    and key not in self._upload_failures
                    and self._pending_locked(key)
                ):
                    requeue = True
                self._cond.notify_all()
            if requeue:
                self._schedule_upload(key, requeue=True)

    def _pending_locked(self, key: str) -> bool:
        try:
            state = (self.local.stamp_of(key), self.local.nbytes_of(key))
        except KVStoreError:
            return False
        return self._remote_claims.get(key) != state

    def _upload_with_retry(self, key: str) -> bool:
        """Upload ``key`` with exponential backoff; True when settled.

        Exhausting ``upload_max_retries`` (or the per-upload timeout)
        records the failure and leaves the key pending — the next
        ``flush`` retries it.  :class:`CrashInjected` always propagates:
        a crash is process death, never a retryable fault.
        """
        attempt = 0
        delay: Optional[float] = None
        started = time.monotonic()
        with _span("upload", key=key):
            while True:
                try:
                    with _span("upload-attempt", key=key, attempt=attempt):
                        self._upload_once(key)
                except CrashInjected:
                    raise
                except KVStoreError:
                    return True  # deleted underneath the pipeline: settled
                except Exception as exc:  # noqa: BLE001 - transient remote fault
                    attempt += 1
                    elapsed = time.monotonic() - started
                    if (
                        attempt > self.upload_max_retries
                        or elapsed > self.upload_timeout_seconds
                    ):
                        self._c_uploads_failed.inc()
                        with self._state_lock:
                            self._upload_failures[key] = f"{type(exc).__name__}: {exc}"
                        return False
                    self._c_upload_retries.inc()
                    delay = self.backoff.next_delay(delay, attempt)
                    with _span("upload-backoff", key=key, attempt=attempt):
                        time.sleep(delay)
                    continue
                return True

    def _upload_once(self, key: str) -> None:
        stamp = self.local.stamp_of(key)  # KVStoreError -> deleted, settled
        payload = self.local._read(key)
        nbytes = len(payload)
        with self._state_lock:
            if self._remote_claims.get(key) == (stamp, nbytes):
                return  # a concurrent upload already claimed this state
        self.remote.put_serialized(key, payload, stamp)
        self._fault("upload:remote-durable")
        with self._state_lock:
            if not self.local.has(key):
                # Deleted while the remote put was in flight: claiming
                # now would resurrect the key on replay.  The remote
                # copy stays an unclaimed orphan for gc.
                return
            # The claim is durable strictly after the remote copy is.
            self._journal.append(
                [{"op": "up", "key": key, "stamp": stamp, "nbytes": nbytes}]
            )
            self._remote_claims[key] = (stamp, nbytes)
            self._upload_failures.pop(key, None)
        # One accumulator per total: after a meters attach these ARE the
        # pipeline meters' counters, so no second count lands anywhere.
        self._c_uploads_completed.inc()
        self._c_bytes_uploaded.inc(nbytes)

    def drain_uploads(self) -> None:
        """Block until the background pipeline has settled every key it
        currently knows about (failures stay pending; see ``flush``)."""
        if self.upload_workers == 0:
            return
        scheduler = self._io_scheduler()
        while True:
            with self._cond:
                if not self._queued and not self._inflight:
                    return
            # On a scheduler worker thread, run queued work instead of
            # parking the very pool slot this drain is waiting on.
            if scheduler.help_once():
                continue
            with self._cond:
                if self._queued or self._inflight:
                    self._cond.wait(0.05)

    def flush(self) -> None:
        self.local.flush()
        self.drain_uploads()
        # Exhausted-retry failures get exactly one more bounded attempt
        # per flush, synchronously; still-failing keys stay pending
        # (locally durable — the barrier contract holds regardless).
        with self._state_lock:
            retry_keys = sorted(self._upload_failures)
            self._upload_failures.clear()
        for key in retry_keys:
            if self._pending(key):
                self._upload_with_retry(key)
        for key in self.pending_uploads():
            if self.upload_workers == 0:
                self._upload_with_retry(key)
        with _span("tier-retention"):
            self._apply_local_retention()
        self.remote.flush()

    # -- retention (demotion) -------------------------------------------
    def _apply_local_retention(self) -> None:
        """Evict local copies beyond the newest ``local_keep_stamps``
        distinct stamps — but only entries whose exact (stamp, nbytes)
        is claimed remote-durable, and only after journaling the move."""
        if self.local_keep_stamps is None:
            return
        local_keys = self.local.keys()
        stamps = set()
        states: Dict[str, Tuple[int, int]] = {}
        for key in local_keys:
            try:
                state = (self.local.stamp_of(key), self.local.nbytes_of(key))
            except KVStoreError:  # pragma: no cover - concurrent delete
                continue
            states[key] = state
            stamps.add(state[0])
        keep = set(sorted(stamps, reverse=True)[: self.local_keep_stamps])
        for key, (stamp, nbytes) in sorted(states.items()):
            if stamp in keep:
                continue
            with self._state_lock:
                if self._remote_claims.get(key) != (stamp, nbytes):
                    continue  # not remote-durable: never evict
                self._journal.append([{"op": "demote", "key": key, "stamp": stamp}])
            self._c_demotions.inc()
            try:
                with _span("demote", key=key, stamp=stamp):
                    self.local.delete(key)
            except KVStoreError:  # pragma: no cover - concurrent delete
                pass

    # -- read path -------------------------------------------------------
    def _read(self, key: str) -> bytes:
        try:
            return self.local._read(key)
        except KVStoreError:
            pass
        with self._state_lock:
            claim = self._remote_claims.get(key)
        if claim is None:
            raise KVStoreError(key)
        payload = self._remote_read(key)
        if self.promote_on_read:
            self._promote(key, payload, claim[0])
        return payload

    def _promote(self, key: str, payload: bytes, stamp: int) -> None:
        """Best-effort read-through promotion back into the local tier."""
        try:
            with _span("promote", key=key, stamp=stamp):
                self.local.put_serialized(key, payload, stamp)
                with self._state_lock:
                    self._journal.append(
                        [{"op": "promote", "key": key, "stamp": stamp}]
                    )
            self._c_promotions.inc()
        except CrashInjected:
            raise
        except Exception:  # pragma: no cover - promotion must never fail a read
            pass

    def _remote_read(self, key: str) -> bytes:
        last_error: Optional[Exception] = None
        delay: Optional[float] = None
        for attempt in range(self.remote_read_retries + 1):
            if attempt:
                self._c_read_retries.inc()
                delay = self.backoff.next_delay(delay, attempt)
                with _span("read-backoff", key=key, attempt=attempt):
                    time.sleep(delay)
            try:
                self._c_remote_reads.inc()
                with _span("remote-read", key=key, attempt=attempt):
                    if self.hedge_after_seconds is not None:
                        return self._remote_read_hedged(key)
                    return self.remote._read(key)
            except (RemoteUnavailable, OSError) as exc:
                last_error = exc
        raise KVStoreError(
            f"remote read failed for {key!r} after "
            f"{self.remote_read_retries + 1} attempts: {last_error}"
        )

    def _remote_read_hedged(self, key: str) -> bytes:
        """One read attempt, hedged: if the primary request has not
        completed within ``hedge_after_seconds``, race a second request
        and take the first success (tail-latency cut, not a retry — the
        slow primary may still win).  Both legs run as ``RESTORE``-class
        tasks on the shared scheduler; the losing leg is cancelled
        cooperatively (a still-queued loser never starts, a running one
        checks its cancel flag before touching the remote)."""
        scheduler = self._io_scheduler()

        def leg() -> bytes:
            if scheduler.current_cancelled():
                raise IOTaskCancelled(key)
            return self.remote._read(key)

        primary = scheduler.submit(leg, QoS.RESTORE, label="tier-read")
        try:
            return primary.result(timeout=self.hedge_after_seconds)
        except IOTaskTimeout:
            pass
        except Exception:
            raise  # a fast failure is the retry loop's business
        self._c_hedged_reads.inc()
        with _span("hedged-read", key=key):
            secondary = scheduler.submit(leg, QoS.RESTORE, label="tier-read-hedge")
            racers = [primary, secondary]
            first_error: Optional[BaseException] = None
            while racers:
                for task in scheduler.wait_any(racers):
                    racers.remove(task)
                    try:
                        value = task.result()
                    except IOTaskCancelled:
                        continue
                    except BaseException as exc:  # noqa: BLE001 - leg error
                        if first_error is None:
                            first_error = exc
                        continue
                    for loser in racers:
                        loser.cancel()
                    return value
            raise first_error  # both legs failed

    # -- metadata --------------------------------------------------------
    def stamp_of(self, key: str) -> int:
        try:
            return self.local.stamp_of(key)
        except KVStoreError:
            pass
        with self._state_lock:
            claim = self._remote_claims.get(key)
        if claim is None:
            raise KVStoreError(key)
        return claim[0]

    def nbytes_of(self, key: str) -> int:
        try:
            return self.local.nbytes_of(key)
        except KVStoreError:
            pass
        with self._state_lock:
            claim = self._remote_claims.get(key)
        if claim is None:
            raise KVStoreError(key)
        return claim[1]

    def has(self, key: str) -> bool:
        if self.local.has(key):
            return True
        with self._state_lock:
            return key in self._remote_claims

    def keys(self) -> List[str]:
        with self._state_lock:
            claimed = set(self._remote_claims)
        return sorted(set(self.local.keys()) | claimed)

    def total_bytes(self) -> int:
        with self._state_lock:
            claims = dict(self._remote_claims)
        total = 0
        local_keys = self.local.keys()
        for key in local_keys:
            try:
                total += self.local.nbytes_of(key)
            except KVStoreError:  # pragma: no cover - concurrent delete
                continue
        seen = set(local_keys)
        for key, (_stamp, nbytes) in claims.items():
            if key not in seen:
                total += nbytes
        return total

    # -- delete ----------------------------------------------------------
    def delete(self, key: str) -> None:
        with self._state_lock:
            claim = self._remote_claims.get(key)
            has_local = self.local.has(key)
            if claim is None and not has_local:
                raise KVStoreError(key)
            if claim is not None:
                # Tombstone first: once the record is durable, replay
                # never resurrects the key even if the physical deletes
                # below die — the copies leak as fsck-visible orphans.
                self._journal.append([{"op": "del", "key": key}])
                self._remote_claims.pop(key, None)
        if has_local:
            try:
                self.local.delete(key)
            except KVStoreError:  # pragma: no cover - concurrent delete
                pass
        if claim is not None:
            try:
                self.remote.delete(key)
            except (KVStoreError, RemoteUnavailable, OSError):
                pass  # unclaimed orphan; gc reclaims it

    def delete_many(self, keys: Sequence[str]) -> None:
        for key in keys:
            self.delete(key)

    # -- fsck / gc -------------------------------------------------------
    def fsck(self, repair: bool = False) -> TieredFsckReport:
        """Cross-check the claim journal against both tiers.

        With ``repair=True``, claims whose remote copy is missing or
        stale are dropped (the key re-enters the upload pipeline if its
        bytes are still local) and the journal is compacted to the
        verified claim set; per-tier ``fsck(repair=True)`` runs when a
        tier supports it.
        """
        report = TieredFsckReport()
        with self._state_lock:
            claims = dict(self._remote_claims)
        remote_keys = set(self.remote.keys())
        for key, (stamp, nbytes) in sorted(claims.items()):
            report.claims_checked += 1
            if key not in remote_keys:
                report.lost_remote_copies.append(key)
                continue
            try:
                ok = (
                    self.remote.stamp_of(key) == stamp
                    and self.remote.nbytes_of(key) == nbytes
                )
            except KVStoreError:  # pragma: no cover - racing delete
                ok = False
            if not ok:
                report.stale_remote_copies.append(key)
        for key in self.local.keys():
            report.keys_checked += 1
            if self._pending(key):
                report.pending_uploads.append(key)
        for key in sorted(remote_keys - set(claims)):
            report.orphan_remote_keys.append(key)
        local_fsck = getattr(self.local, "fsck", None)
        if callable(local_fsck):
            report.local_report = local_fsck(repair=repair)
        remote_target = getattr(self.remote, "inner", self.remote)
        remote_fsck = getattr(remote_target, "fsck", None)
        if callable(remote_fsck):
            report.remote_report = remote_fsck(repair=repair)
        if repair and (report.lost_remote_copies or report.stale_remote_copies):
            bad = set(report.lost_remote_copies) | set(report.stale_remote_copies)
            with self._state_lock:
                for key in bad:
                    self._remote_claims.pop(key, None)
                self._compact_journal_locked()
            for key in sorted(bad):
                if self.local.has(key):
                    self._schedule_upload(key)
            report.repaired = True
        return report

    def gc(self) -> TieredGCReport:
        """Reclaim unclaimed remote copies and compact the tier journal
        (plus the local tier's own gc when it has one)."""
        with self._state_lock:
            claims = dict(self._remote_claims)
        reclaimed = 0
        reclaimed_bytes = 0
        for key in sorted(set(self.remote.keys()) - set(claims)):
            try:
                nbytes = self.remote.nbytes_of(key)
                self.remote.delete(key)
            except (KVStoreError, RemoteUnavailable, OSError):
                continue
            reclaimed += 1
            reclaimed_bytes += nbytes
        with self._state_lock:
            before = self._journal.records
            self._compact_journal_locked()
            compacted = before - self._journal.records
        local_gc = getattr(self.local, "gc", None)
        local_report = local_gc() if callable(local_gc) else None
        return TieredGCReport(
            remote_keys_reclaimed=reclaimed,
            remote_bytes_reclaimed=reclaimed_bytes,
            journal_records_compacted=compacted,
            local_report=local_report,
        )

    def _compact_journal_locked(self) -> None:
        self._journal.rewrite(
            [
                {"op": "up", "key": key, "stamp": stamp, "nbytes": nbytes}
                for key, (stamp, nbytes) in sorted(self._remote_claims.items())
            ]
        )

    # -- stats / lifecycle ----------------------------------------------
    def tier_stats(self) -> Dict[str, int]:
        """Counters for the CLI's stats block (and tests).

        These read the registry counters directly — after a meters
        attach, ``bytes_uploaded``/``upload_retries`` here and in
        ``PipelineMeters.snapshot()`` are the same accumulators, so the
        two views cannot drift.
        """
        stats = {
            "uploads_completed": self.uploads_completed,
            "upload_retries": self.upload_retries,
            "uploads_failed": self.uploads_failed,
            "bytes_uploaded": self.bytes_uploaded,
            "remote_reads": self.remote_reads,
            "hedged_reads": self.hedged_reads,
            "read_retries": self.read_retries,
            "promotions": self.promotions,
            "demotions": self.demotions,
        }
        with self._state_lock:
            stats["remote_claims"] = len(self._remote_claims)
        stats["pending_uploads"] = len(self.pending_uploads())
        stats["local_keys"] = len(self.local.keys())
        stats["remote_faults"] = int(getattr(self.remote, "faults_injected", 0))
        return stats

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.flush()
        finally:
            with self._cond:
                self._closed = True
                self._cond.notify_all()
            if self._upload_lane is not None:
                # A clean close drained the pipeline in flush(); a
                # crashed one leaves tasks that see _closed and settle
                # as no-ops.  Either way the lane name is released so
                # repeated open/close cycles (chaos campaigns) do not
                # accumulate lane entries on the shared scheduler.
                self._io_scheduler().release_lane(self._upload_lane.name)
                self._upload_lane = None
            self.local.close()
            self.remote.close()


def open_tiered_root(
    root: str,
    codec: Optional[object] = None,
    parallel_workers: int = 0,
    remote_latency: float = 0.0,
    remote_fault_rate: float = 0.0,
    remote_seed: int = 0x5EED,
    upload_workers: int = 1,
    local_keep_stamps: Optional[int] = None,
    hedge_after_seconds: Optional[float] = 0.25,
    backoff_jitter: bool = True,
    backoff_seed: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
) -> TieredBackend:
    """Open the standard tiered layout under ``root``.

    ``<root>/local`` is a :class:`~repro.ckpt.dedup.DedupBackend` (so
    ``codec``/``parallel_workers`` apply to the tier that absorbs every
    write), ``<root>/remote`` a :class:`~repro.ckpt.sharded.
    ShardedDiskKVStore` behind :class:`SimulatedObjectStore`, and
    ``<root>/tier.jsonl`` the promotion/demotion journal.
    """
    from .dedup import DedupBackend
    from .sharded import ShardedDiskKVStore

    os.makedirs(root, exist_ok=True)
    local = DedupBackend(
        os.path.join(root, "local"), codec=codec, parallel_workers=parallel_workers
    )
    remote = SimulatedObjectStore(
        ShardedDiskKVStore(os.path.join(root, "remote")),
        latency_seconds=remote_latency,
        fault_rate=remote_fault_rate,
        seed=remote_seed,
        registry=registry,
    )
    return TieredBackend(
        local,
        remote,
        journal_path=os.path.join(root, "tier.jsonl"),
        upload_workers=upload_workers,
        local_keep_stamps=local_keep_stamps,
        hedge_after_seconds=hedge_after_seconds,
        backoff_jitter=backoff_jitter,
        backoff_seed=backoff_seed,
        registry=registry,
    )


def is_tiered_root(root: str) -> bool:
    """Heuristic marker check for the standard tiered layout."""
    return os.path.exists(os.path.join(root, "tier.jsonl")) or (
        os.path.isdir(os.path.join(root, "local"))
        and os.path.isdir(os.path.join(root, "remote"))
    )
