"""Sharded persistent store with an append-only journal index.

:class:`~repro.ckpt.kvstore.DiskKVStore` rewrites its whole JSON index on
every put — O(n) per write, O(n²) across a training run, and a single
hot directory holding every entry file.  This store fixes both:

* **Sharded layout** — entries live under ``<root>/shards/<hh>/`` where
  ``hh`` is a hash prefix of the key, keeping directories small and
  letting parallel readers/writers fan out across shards.
* **Journal index** — metadata is an append-only JSONL file.  A put
  appends one line (O(1)); opening the store replays the journal, last
  record per key winning.  Deletes append tombstones.  A torn final
  line (crash mid-append) is truncated on replay, so the store recovers
  to the last complete record.
* **Periodic compaction** — when the journal holds far more records
  than live keys, it is rewritten to one record per key (atomic via
  ``os.replace``).  ``compactions`` counts them; ``journal_appends``
  counts appended records, and ``index_rewrites`` stays 0 by
  construction (the property the microbenchmark asserts).

Crash consistency
-----------------
Payload files are *versioned*: entry ``k`` at stamp ``s`` lives in
``<escaped k>@<s>.bin`` (``<escaped k>@<s>.<gen>.bin`` for repeated
writes at the same stamp — see :meth:`ShardedDiskKVStore._path` for why
the ``@`` separator matters), and the journal record for a put names
the stamp whose file it refers to.  An overwrite therefore writes a **new**
file and only then appends the journal record; the previous version's
file is unlinked only after the record naming its successor is durable.
Every crash window leaves the store consistent:

* crash before the new payload's ``os.replace`` — old file + old record
  intact, a stray ``.tmp`` is ignored;
* crash after the payload lands but before the journal append — the new
  file is an invisible orphan; replay serves the previous version with
  matching metadata (stamp, nbytes and bytes all agree — unlike a flat
  store that overwrites payloads in place);
* crash mid-append — the torn journal line is truncated on replay;
* crash mid-compaction — the compacted file is still a ``.tmp``; the
  original journal is untouched.

Batched puts defer both the journal append and superseded-file removal
to the end of the batch, so payloads never outlive the records that
reference them in the wrong order.  The crash-injection test suite
(``tests/test_crash_injection.py``) drives every window above through
the ``fault_hook`` seam on :class:`~repro.ckpt.backend.CheckpointBackend`.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List

from . import jsonl
from .backend import CheckpointBackend, CrashInjected, KVStoreError, escape_key
from .serializer import write_payload


class ShardedDiskKVStore(CheckpointBackend):
    """Persistent tier: hash-sharded versioned entry files + JSONL journal."""

    def __init__(
        self,
        root: str,
        shard_width: int = 2,
        compact_min_records: int = 256,
        compact_garbage_ratio: float = 4.0,
    ) -> None:
        super().__init__()
        if shard_width < 1:
            raise ValueError("shard_width must be >= 1")
        if compact_garbage_ratio <= 1.0:
            raise ValueError("compact_garbage_ratio must be > 1")
        self.root = root
        self.shard_width = shard_width
        self.compact_min_records = compact_min_records
        self.compact_garbage_ratio = compact_garbage_ratio
        self._shards_dir = os.path.join(root, "shards")
        self._journal_path = os.path.join(root, "index.jsonl")
        os.makedirs(self._shards_dir, exist_ok=True)
        self._index: Dict[str, Dict[str, int]] = {}
        self._shard_dirs_made: set = set()
        self._defer_journal = False
        self._pending_records: List[dict] = []
        # Superseded / deleted payload files whose removal must wait for
        # the journal records that stop referencing them (batched path).
        self._pending_unlinks: List[str] = []
        self.journal_records = 0  # records currently in the journal file
        self.journal_appends = 0  # records appended by this instance
        self.compactions = 0
        self.index_rewrites = 0  # always 0; meter kept for symmetry
        self._replay()

    # -- journal --------------------------------------------------------
    def _replay(self) -> None:
        """Rebuild the in-memory index from the journal.

        The journal is append-only, so only its *final* line can be torn
        by a crash; a line that fails to parse is treated as the torn
        tail: replay stops there and the file is truncated back to the
        last complete record, so later appends cannot concatenate onto
        the torn fragment (which would corrupt the *next* replay).
        """
        if not os.path.exists(self._journal_path):
            return
        valid_bytes = 0
        with open(self._journal_path, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    # A complete record always ends with the newline its
                    # append wrote before acknowledging; a parseable tail
                    # without one is still a torn write, and accepting it
                    # would let the next append concatenate onto it and
                    # a later replay drop acknowledged records.
                    break
                try:
                    record = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                valid_bytes += len(line)
                self.journal_records += 1
                if record["op"] == "put":
                    self._index[record["key"]] = {
                        "stamp": int(record["stamp"]),
                        "nbytes": int(record["nbytes"]),
                        "gen": int(record.get("gen", 0)),
                    }
                elif record["op"] == "del":
                    self._index.pop(record["key"], None)
        if valid_bytes < os.path.getsize(self._journal_path):
            os.truncate(self._journal_path, valid_bytes)

    def _journal(self, record: dict) -> None:
        """Record one index mutation — buffered inside a batch."""
        if self._defer_journal:
            self._pending_records.append(record)
        else:
            self._append_records([record])

    def _append_records(self, records: List[dict]) -> None:
        """Append journal records in one write, then maybe compact.

        Records are encoded by the preformatted JSONL writer
        (:mod:`repro.ckpt.jsonl`) — same on-disk format, none of
        ``json.dumps``'s generic-encoder overhead on the put path.
        """
        text = "".join(map(jsonl.encode_record, records))
        with open(self._journal_path, "a", encoding="utf-8") as handle:
            if self.fault_hook is not None and len(text) > 1:
                # Crash-injection seam: split the append so a hook can
                # model a torn line (partial bytes durable, then death).
                half = len(text) // 2
                handle.write(text[:half])
                handle.flush()
                self._fault("journal:mid-append")
                handle.write(text[half:])
            else:
                handle.write(text)
        self.journal_records += len(records)
        self.journal_appends += len(records)
        self._fault("journal:appended")
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        threshold = max(
            self.compact_min_records,
            self.compact_garbage_ratio * max(len(self._index), 1),
        )
        if self.journal_records < threshold:
            return
        tmp = self._journal_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for key in sorted(self._index):
                meta = self._index[key]
                handle.write(jsonl.put_line(
                    key, int(meta["stamp"]), int(meta["nbytes"]),
                    gen=int(meta.get("gen", 0)),
                ))
        self._fault("compact:tmp-written")
        os.replace(tmp, self._journal_path)
        self.journal_records = len(self._index)
        self.compactions += 1

    # -- layout ---------------------------------------------------------
    def _shard_of(self, key: str) -> str:
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()
        return os.path.join(self._shards_dir, digest[: self.shard_width])

    def _path(self, key: str, stamp: int, gen: int = 0) -> str:
        """Versioned payload path — pure computation, no side effects.

        ``gen`` disambiguates successive writes of the *same* key at the
        *same* stamp: without it, such an overwrite would replace the
        referenced payload in place, reopening the torn-overwrite window
        the stamp-versioned names exist to close.

        The version suffix is joined with ``@`` — a character
        :func:`escape_key` never emits — so distinct ``(key, stamp,
        gen)`` triples can never compose to the same file name (a ``.``
        separator would let ``k`` at stamp 5/gen 3 collide with key
        ``k.5`` at stamp 3).
        """
        suffix = f"@{stamp}.bin" if gen == 0 else f"@{stamp}.{gen}.bin"
        return os.path.join(self._shard_of(key), escape_key(key) + suffix)

    def _legacy_path(self, key: str) -> str:
        """Pre-versioning payload path (PR-1 layout: no stamp suffix).

        Reads fall back to it so an existing checkpoint directory stays
        resumable; rewrites land under versioned names.
        """
        return os.path.join(self._shard_of(key), escape_key(key) + ".bin")

    def _ensure_shard_dir(self, path: str) -> None:
        shard = os.path.dirname(path)
        if shard not in self._shard_dirs_made:
            os.makedirs(shard, exist_ok=True)
            self._shard_dirs_made.add(shard)

    def _write_payload(self, path: str, payload) -> None:
        """Atomic payload replace: a torn write never clobbers any
        version a journal record can reference.  Frame ropes go out in
        one buffered ``writelines`` — no concatenation."""
        self._ensure_shard_dir(path)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            write_payload(handle, payload)
        self._fault("payload:tmp-written")
        os.replace(tmp, path)

    def _unlink_after_journal(self, path: str) -> None:
        """Remove a no-longer-referenced payload file.

        Deferred inside a batch: the file must survive until the journal
        records that stop referencing it are durable, or a crash would
        leave the index pointing at a deleted payload.
        """
        if self._defer_journal:
            self._pending_unlinks.append(path)
            return
        if os.path.exists(path):
            os.remove(path)

    def _superseded_path(self, key: str, old_meta: Dict[str, int]) -> str:
        """The payload file an overwrite/delete makes unreferenced."""
        path = self._path(key, int(old_meta["stamp"]), int(old_meta.get("gen", 0)))
        if os.path.exists(path):
            return path
        return self._legacy_path(key)

    # -- backend contract -----------------------------------------------
    def _write(self, key: str, payload, stamp: int, node) -> None:
        old_meta = self._index.get(key)
        gen = 0
        if old_meta is not None and int(old_meta["stamp"]) == stamp:
            # Same-key same-stamp overwrite: bump the generation so the
            # new payload lands in a fresh file and the journaled old
            # version survives a crash before the new record is durable.
            gen = int(old_meta.get("gen", 0)) + 1
        self._write_payload(self._path(key, stamp, gen), payload)
        self._fault("payload:durable")
        self._index[key] = {"stamp": stamp, "nbytes": len(payload), "gen": gen}
        record = {"op": "put", "key": key, "stamp": stamp, "nbytes": len(payload)}
        if gen:
            record["gen"] = gen
        self._journal(record)
        if old_meta is not None:
            self._unlink_after_journal(self._superseded_path(key, old_meta))

    def _finish_batch(self, crashed: bool = False) -> None:
        """Flush deferred journal records, then deferred file unlinks.

        ``crashed`` models a process death mid-batch (the crash-injection
        suite's :class:`CrashInjected`): a dead process appends nothing
        and unlinks nothing, so the deferred work is *discarded* — the
        reopened store must see only what was durable at the fault
        point (orphan payload files, the old journal).
        """
        records, self._pending_records = self._pending_records, []
        unlinks, self._pending_unlinks = self._pending_unlinks, []
        self._defer_journal = False
        if crashed:
            return
        if records:
            self._append_records(records)
        for path in unlinks:
            if os.path.exists(path):
                os.remove(path)

    def put_many_serialized(self, items) -> List[int]:
        """Batched puts: one journal append for the whole batch.

        Routes through ``put_serialized`` (and thus the ``_write`` hook,
        so subclasses see every entry) with journaling deferred.  If an
        item fails mid-batch, the records of the completed prefix are
        still appended before the error propagates — the journal never
        lags payloads that were already written.  Superseded payload
        files are unlinked only after the batch's records are durable.
        """
        self._defer_journal = True
        try:
            sizes = [self.put_serialized(key, payload, stamp, node)
                     for key, payload, stamp, node in items]
        except BaseException as exc:
            self._finish_batch(crashed=isinstance(exc, CrashInjected))
            raise
        self._finish_batch()
        return sizes

    def _read(self, key: str) -> bytes:
        if key not in self._index:
            raise KVStoreError(key)
        meta = self._index[key]
        try:
            path = self._path(key, int(meta["stamp"]), int(meta.get("gen", 0)))
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            pass
        # Pre-versioning layout fallback, gated on the indexed size so a
        # stale unversioned file can never masquerade as a newer stamp.
        try:
            with open(self._legacy_path(key), "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            raise KVStoreError(key) from None
        if len(payload) != int(meta["nbytes"]):
            raise KVStoreError(key)
        return payload

    def stamp_of(self, key: str) -> int:
        if key not in self._index:
            raise KVStoreError(key)
        return int(self._index[key]["stamp"])

    def nbytes_of(self, key: str) -> int:
        if key not in self._index:
            raise KVStoreError(key)
        return int(self._index[key]["nbytes"])

    def has(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> List[str]:
        return sorted(self._index)

    def total_bytes(self) -> int:
        return sum(int(meta["nbytes"]) for meta in self._index.values())

    def delete(self, key: str) -> None:
        if key not in self._index:
            raise KVStoreError(key)
        # Tombstone first: a crash after the journal append merely
        # leaks an orphan payload file (invisible to the index), while
        # the reverse order would leave a journal that still indexes a
        # key whose payload is gone.
        old_meta = self._index.pop(key)
        self._journal({"op": "del", "key": key})
        self._unlink_after_journal(self._superseded_path(key, old_meta))

    def delete_many(self, keys) -> None:
        """Batched deletes: one journal append for all tombstones."""
        self._defer_journal = True
        try:
            for key in keys:
                self.delete(key)
        except BaseException as exc:
            self._finish_batch(crashed=isinstance(exc, CrashInjected))
            raise
        self._finish_batch()
