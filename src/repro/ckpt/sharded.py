"""Sharded persistent store with an append-only journal index.

:class:`~repro.ckpt.kvstore.DiskKVStore` rewrites its whole JSON index on
every put — O(n) per write, O(n²) across a training run, and a single
hot directory holding every entry file.  This store fixes both:

* **Sharded layout** — entries live under ``<root>/shards/<hh>/`` where
  ``hh`` is a hash prefix of the key, keeping directories small and
  letting future parallel writers fan out across shards.
* **Journal index** — metadata is an append-only JSONL file.  A put
  appends one line (O(1)); opening the store replays the journal, last
  record per key winning.  Deletes append tombstones.  A torn final
  line (crash mid-append) is ignored on replay, so the store recovers to
  the last complete record.
* **Periodic compaction** — when the journal holds far more records
  than live keys, it is rewritten to one record per key (atomic via
  ``os.replace``).  ``compactions`` counts them; ``journal_appends``
  counts appended records, and ``index_rewrites`` stays 0 by
  construction (the property the microbenchmark asserts).

Write ordering: the payload file is written *before* its journal record,
so a journal record always refers to a complete payload; a crash between
the two leaves an orphan file that is invisible to the index.  Payload
files are replaced atomically (tmp + ``os.replace``) so an overwrite
torn mid-write cannot corrupt the previous version that the journal
still references.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List

from .backend import CheckpointBackend, KVStoreError, escape_key


class ShardedDiskKVStore(CheckpointBackend):
    """Persistent tier: hash-sharded entry files + JSONL journal index."""

    def __init__(
        self,
        root: str,
        shard_width: int = 2,
        compact_min_records: int = 256,
        compact_garbage_ratio: float = 4.0,
    ) -> None:
        super().__init__()
        if shard_width < 1:
            raise ValueError("shard_width must be >= 1")
        if compact_garbage_ratio <= 1.0:
            raise ValueError("compact_garbage_ratio must be > 1")
        self.root = root
        self.shard_width = shard_width
        self.compact_min_records = compact_min_records
        self.compact_garbage_ratio = compact_garbage_ratio
        self._shards_dir = os.path.join(root, "shards")
        self._journal_path = os.path.join(root, "index.jsonl")
        os.makedirs(self._shards_dir, exist_ok=True)
        self._index: Dict[str, Dict[str, int]] = {}
        self._shard_dirs_made: set = set()
        self._defer_journal = False
        self._pending_records: List[dict] = []
        self.journal_records = 0  # records currently in the journal file
        self.journal_appends = 0  # records appended by this instance
        self.compactions = 0
        self.index_rewrites = 0  # always 0; meter kept for symmetry
        self._replay()

    # -- journal --------------------------------------------------------
    def _replay(self) -> None:
        """Rebuild the in-memory index from the journal.

        The journal is append-only, so only its *final* line can be torn
        by a crash; a line that fails to parse is treated as the torn
        tail: replay stops there and the file is truncated back to the
        last complete record, so later appends cannot concatenate onto
        the torn fragment (which would corrupt the *next* replay).
        """
        if not os.path.exists(self._journal_path):
            return
        valid_bytes = 0
        with open(self._journal_path, "rb") as handle:
            for line in handle:
                try:
                    record = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                valid_bytes += len(line)
                self.journal_records += 1
                if record["op"] == "put":
                    self._index[record["key"]] = {
                        "stamp": int(record["stamp"]),
                        "nbytes": int(record["nbytes"]),
                    }
                elif record["op"] == "del":
                    self._index.pop(record["key"], None)
        if valid_bytes < os.path.getsize(self._journal_path):
            os.truncate(self._journal_path, valid_bytes)

    def _journal(self, record: dict) -> None:
        """Record one index mutation — buffered inside a batch."""
        if self._defer_journal:
            self._pending_records.append(record)
        else:
            self._append_records([record])

    def _append_records(self, records: List[dict]) -> None:
        """Append journal records in one write, then maybe compact."""
        text = "".join(json.dumps(record) + "\n" for record in records)
        with open(self._journal_path, "a", encoding="utf-8") as handle:
            handle.write(text)
        self.journal_records += len(records)
        self.journal_appends += len(records)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        threshold = max(
            self.compact_min_records,
            self.compact_garbage_ratio * max(len(self._index), 1),
        )
        if self.journal_records < threshold:
            return
        tmp = self._journal_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for key in sorted(self._index):
                meta = self._index[key]
                handle.write(
                    json.dumps(
                        {"op": "put", "key": key,
                         "stamp": meta["stamp"], "nbytes": meta["nbytes"]}
                    )
                    + "\n"
                )
        os.replace(tmp, self._journal_path)
        self.journal_records = len(self._index)
        self.compactions += 1

    # -- layout ---------------------------------------------------------
    def _path(self, key: str) -> str:
        """Pure path computation — no filesystem side effects, so reads
        and deletes never create shard directories."""
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()
        shard = os.path.join(self._shards_dir, digest[: self.shard_width])
        return os.path.join(shard, escape_key(key) + ".bin")

    def _ensure_shard_dir(self, path: str) -> None:
        shard = os.path.dirname(path)
        if shard not in self._shard_dirs_made:
            os.makedirs(shard, exist_ok=True)
            self._shard_dirs_made.add(shard)

    def _write_payload(self, key: str, payload: bytes) -> None:
        """Atomic payload replace: a torn overwrite never clobbers the
        previous version the journal still points at."""
        path = self._path(key)
        self._ensure_shard_dir(path)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)

    # -- backend contract -----------------------------------------------
    def _write(self, key: str, payload: bytes, stamp: int, node) -> None:
        self._write_payload(key, payload)
        self._index[key] = {"stamp": stamp, "nbytes": len(payload)}
        self._journal({"op": "put", "key": key, "stamp": stamp, "nbytes": len(payload)})

    def put_many_serialized(self, items) -> List[int]:
        """Batched puts: one journal append for the whole batch.

        Routes through ``put_serialized`` (and thus the ``_write`` hook,
        so subclasses see every entry) with journaling deferred.  If an
        item fails mid-batch, the records of the completed prefix are
        still appended before the error propagates — the journal never
        lags payloads that were already written.
        """
        self._defer_journal = True
        try:
            sizes = [self.put_serialized(key, payload, stamp, node)
                     for key, payload, stamp, node in items]
        finally:
            records, self._pending_records = self._pending_records, []
            self._defer_journal = False
            if records:
                self._append_records(records)
        return sizes

    def _read(self, key: str) -> bytes:
        if key not in self._index:
            raise KVStoreError(key)
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise KVStoreError(key) from None

    def stamp_of(self, key: str) -> int:
        if key not in self._index:
            raise KVStoreError(key)
        return int(self._index[key]["stamp"])

    def nbytes_of(self, key: str) -> int:
        if key not in self._index:
            raise KVStoreError(key)
        return int(self._index[key]["nbytes"])

    def has(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> List[str]:
        return sorted(self._index)

    def total_bytes(self) -> int:
        return sum(int(meta["nbytes"]) for meta in self._index.values())

    def delete(self, key: str) -> None:
        if key not in self._index:
            raise KVStoreError(key)
        # Tombstone first: a crash after the journal append merely
        # leaks an orphan payload file (invisible to the index), while
        # the reverse order would leave a journal that still indexes a
        # key whose payload is gone.
        del self._index[key]
        self._journal({"op": "del", "key": key})
        path = self._path(key)
        if os.path.exists(path):
            os.remove(path)

    def delete_many(self, keys) -> None:
        """Batched deletes: one journal append for all tombstones."""
        self._defer_journal = True
        try:
            for key in keys:
                self.delete(key)
        finally:
            records, self._pending_records = self._pending_records, []
            self._defer_journal = False
            if records:
                self._append_records(records)
