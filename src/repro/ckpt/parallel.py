"""Multi-process chunk hash/compress engine — escaping the GIL.

PR 4 drove the save path to one SHA-256 pass and at most one staging
copy per persisted byte, but every pass still ran on a single
interpreter thread.  This module fans the *chunk-granularity* work —
SHA-256 digests, chunk compression, and decompression on restore — out
to per-core worker processes, communicating through shared memory so
payload bytes are **never pickled**:

.. code-block:: text

            caller thread                      worker processes
   ┌──────────────────────────┐        ┌───────────────────────────┐
   │ serialize → frame rope   │        │  attach(arena) once       │
   │ snapshot_into(SharedSlice)──────▶ │                           │
   │      (the ONE copy)      │ tasks  │  view = arena[off:off+n]  │
   │ submit (seg, off, len) ──┼──────▶ │  sha256 over chunk slices │
   │                          │        │  codec.encode → out region│
   │ collect (idx, digest,    │ ◀──────┼─ (idx, rel_off, enc_len,  │
   │   enc_len, byte counts)  │results │    cpu_s, bytes counted)  │
   │ fold counts into meters  │        │                           │
   │ write chunk files / refs │        └───────────────────────────┘
   └──────────────────────────┘

Components
----------
* :class:`SharedStagingPool` — the :class:`~repro.ckpt.async_writer.
  StagingPool` generalized to a ``multiprocessing.shared_memory`` arena.
  ``acquire`` returns a :class:`SharedSlice` whose :class:`SharedRegion`
  is a picklable (segment, offset, nbytes) address; the FIFO admission
  discipline (and its starvation fix) is inherited from the base pool.
* :class:`ChunkWorkerPool` — a lazily started pool of worker processes
  consuming digest/encode/decode tasks from a queue.  Workers report
  per-task CPU seconds and byte counts so :class:`~repro.ckpt.
  serializer.PipelineMeters` invariants (1 hash pass, ≤1 staging copy,
  ≤1 compression pass per persisted byte) stay *measured* across the
  process boundary.
* :class:`ParallelChunkEngine` — the orchestrator the dedup backend
  calls: stages a payload once, splits its chunk range across workers,
  seeds the rope's digest cache with the results, and hands back framed
  encoded chunk bodies for exactly the novel chunks being persisted.

Graceful degradation
--------------------
Worker-pool spawn failure, a worker killed mid-chunk, and a poisoned
(unlinked / corrupted) shared-memory segment all degrade the same way:
the engine emits a :class:`RuntimeWarning`, disables itself, and the
caller recomputes in-process — a checkpoint may save slower, never
corrupt.  The crash-injection suite pins each of these seams.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import queue as queue_module
import time
import warnings
import weakref
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..obs import trace as _trace
from ..obs.metrics import get_registry
from .async_writer import DEFAULT_ARENA_BYTES, StagingPool
from .codec import ChunkCodec, encode_chunk_file, make_chunk_codec
from .serializer import PayloadFrames

try:  # pragma: no cover - stdlib, but keep tier-1 importable anywhere
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

#: Default worker count when the caller asks for "auto".
DEFAULT_WORKERS = max(1, (os.cpu_count() or 1))

#: How long the collector waits without a result before checking worker
#: liveness, and the absolute per-batch deadline before declaring the
#: pool wedged.  Generous: a loaded CI box must never trip it.
_HEARTBEAT_SECONDS = 0.5
_DEADLINE_SECONDS = 300.0

# Pool-health instruments, re-homed from implicit bookkeeping onto the
# process-wide registry so heartbeat/deadline behaviour is observable.
_POOL_TASKS = get_registry().counter(
    "moc_worker_tasks_total", "Tasks submitted to the chunk worker pool",
    labelnames=("kind",),
)
_POOL_HEARTBEAT_TIMEOUTS = get_registry().counter(
    "moc_worker_heartbeat_timeouts_total",
    "Collector heartbeat intervals that elapsed without a result",
)
_POOL_DEADLINE_EXCEEDED = get_registry().counter(
    "moc_worker_deadline_exceeded_total", "Batches that hit the wedge deadline"
)
_POOL_WORKER_DEATHS = get_registry().counter(
    "moc_worker_deaths_total", "Worker processes observed dead mid-batch"
)
_POOL_DEGRADATIONS = get_registry().counter(
    "moc_worker_pool_degradations_total",
    "Engine fallbacks to in-process execution after a pool failure",
)


class WorkerPoolError(RuntimeError):
    """The worker pool failed (spawn, death, or poisoned segment)."""


#: Every live shared-memory owner (staging pools and scratch segments)
#: registers here so one atexit sweep can unlink whatever a process
#: failed to close.  ``__del__`` alone is GC-timing dependent: a pool
#: still referenced from an abandoned store instance at interpreter
#: shutdown would leak its ``/dev/shm`` segments to the machine.
_LIVE_SEGMENT_OWNERS: "weakref.WeakSet" = weakref.WeakSet()


def _cleanup_segments_at_exit() -> None:  # pragma: no cover - exit path
    for owner in list(_LIVE_SEGMENT_OWNERS):
        try:
            owner.close()
        except Exception:
            pass


atexit.register(_cleanup_segments_at_exit)


class SharedRegion(NamedTuple):
    """Picklable address of staged bytes inside a shared-memory segment."""

    segment: str
    offset: int
    nbytes: int


class SharedSlice:
    """A carved extent of a :class:`SharedStagingPool` arena.

    Duck-compatible with the pooled ``bytearray`` where it matters:
    ``len()`` works and :meth:`PayloadFrames.snapshot_into` copies into
    ``.view``.  ``.region`` is the cross-process address workers attach.
    """

    __slots__ = ("region", "view")

    def __init__(self, region: SharedRegion, view: memoryview) -> None:
        self.region = region
        self.view = view

    def __len__(self) -> int:
        return self.region.nbytes


class SharedStagingPool(StagingPool):
    """A :class:`StagingPool` whose arena lives in shared memory.

    One ``multiprocessing.shared_memory`` segment backs the whole arena
    (created lazily on first acquire); ``acquire`` carves extents from a
    first-fit free list instead of handing out heap ``bytearray``\\ s.
    Payloads larger than the arena follow the same oversize liveness
    rule as the base pool, each in a dedicated throwaway segment.
    Blocking, FIFO admission, and the meters all come from the base
    class — only the storage substrate changes.

    Meter mapping: ``buffers_reused`` counts arena carves (steady
    state), ``buffers_allocated`` counts segment creations (the arena
    itself plus any oversize segments).
    """

    def __init__(self, arena_bytes: int = DEFAULT_ARENA_BYTES) -> None:
        if shared_memory is None:  # pragma: no cover - ancient stdlib only
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        super().__init__(arena_bytes)
        self._shm: Optional["shared_memory.SharedMemory"] = None
        self._arena_view: Optional[memoryview] = None
        # Sorted (offset, size) free extents of the arena.
        self._extents: List[List[int]] = []
        # Live oversize segments: name -> SharedMemory.
        self._oversize: Dict[str, "shared_memory.SharedMemory"] = {}
        self._closed = False
        _LIVE_SEGMENT_OWNERS.add(self)

    # -- substrate ------------------------------------------------------
    def _ensure_arena(self) -> None:
        if self._shm is None:
            if self._closed:
                raise RuntimeError("SharedStagingPool is closed")
            self._shm = shared_memory.SharedMemory(create=True, size=self.arena_bytes)
            self._arena_view = memoryview(self._shm.buf)
            self._extents = [[0, self.arena_bytes]]
            self.buffers_allocated += 1

    @property
    def segment_name(self) -> Optional[str]:
        return self._shm.name if self._shm is not None else None

    def _try_acquire(self, nbytes: int):
        if self._closed:
            raise RuntimeError("SharedStagingPool is closed")
        nbytes = max(1, nbytes)
        if nbytes > self.arena_bytes:
            if self._in_use != 0:
                return None  # oversize liveness rule (see base class)
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
            self._oversize[segment.name] = segment
            self._in_use += 1
            self.buffers_allocated += 1
            region = SharedRegion(segment.name, 0, nbytes)
            return SharedSlice(region, memoryview(segment.buf)[:nbytes])
        self._ensure_arena()
        for index, (offset, size) in enumerate(self._extents):
            if size >= nbytes:
                if size == nbytes:
                    self._extents.pop(index)
                else:
                    self._extents[index] = [offset + nbytes, size - nbytes]
                self._in_use += 1
                self.buffers_reused += 1
                region = SharedRegion(self._shm.name, offset, nbytes)
                return SharedSlice(region, self._arena_view[offset:offset + nbytes])
        return None

    def release(self, buffer: SharedSlice) -> None:
        with self._cond:
            self._in_use -= 1
            region = buffer.region
            try:
                # Drop the slice's memoryview so the segment can really
                # close; a rope still holding sub-views is tolerated
                # (the mapping then lives until those views die).
                buffer.view.release()
            except BufferError:  # pragma: no cover - exported sub-views
                pass
            if region.segment in self._oversize:
                segment = self._oversize.pop(region.segment)
                _close_segment(segment, unlink=True)
            else:
                self._free_extent(region.offset, region.nbytes)
            self._cond.notify_all()

    def _free_extent(self, offset: int, size: int) -> None:
        """Insert a freed extent, coalescing with its neighbours."""
        extents = self._extents
        index = 0
        while index < len(extents) and extents[index][0] < offset:
            index += 1
        extents.insert(index, [offset, size])
        # Coalesce with successor, then predecessor.
        if index + 1 < len(extents) and offset + size == extents[index + 1][0]:
            extents[index][1] += extents[index + 1][1]
            extents.pop(index + 1)
        if index > 0 and extents[index - 1][0] + extents[index - 1][1] == offset:
            extents[index - 1][1] += extents[index][1]
            extents.pop(index)

    @property
    def idle_buffers(self) -> int:
        with self._cond:
            return len(self._extents)

    @property
    def arena_in_use(self) -> int:
        with self._cond:
            if self._shm is None:
                return 0
            return self.arena_bytes - sum(size for _, size in self._extents)

    def close(self) -> None:
        """Unlink every segment.  Safe to call more than once."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for segment in self._oversize.values():
                _close_segment(segment, unlink=True)
            self._oversize.clear()
            if self._arena_view is not None:
                self._arena_view.release()
                self._arena_view = None
            if self._shm is not None:
                _close_segment(self._shm, unlink=True)
                self._shm = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def _close_segment(segment, unlink: bool) -> None:
    """Close (and optionally unlink) a segment, tolerating exported views.

    ``SharedMemory.close`` raises ``BufferError`` while any memoryview
    into the mapping is still alive; a lingering read-only rope view is
    harmless (the mapping just lives until process exit), so the unlink
    — which actually frees the name — must still happen.
    """
    try:
        segment.close()
    except BufferError:
        pass
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def _reap_processes(procs: Sequence[multiprocessing.Process], grace_seconds: float) -> None:
    """Tear worker processes down with bounded escalation.

    ``terminate()`` (SIGTERM) → ``join(grace)`` → ``kill()`` (SIGKILL,
    uncatchable) → ``join(grace)``.  A worker that masks or ignores
    SIGTERM therefore cannot wedge teardown past ``2 * grace_seconds``;
    without the kill step it would linger as a zombie holding the
    half-closed queues forever.
    """
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        if proc.pid is not None:
            proc.join(timeout=grace_seconds)
    survivors = [proc for proc in procs if proc.is_alive()]
    for proc in survivors:
        kill = getattr(proc, "kill", None)  # Process.kill is 3.7+
        if kill is not None:
            kill()
        else:  # pragma: no cover - ancient stdlib only
            proc.terminate()
    for proc in survivors:
        proc.join(timeout=grace_seconds)


def _attach_segment(cache: Dict[str, "shared_memory.SharedMemory"], name: str):
    """Worker-side attach with caching and resource-tracker hygiene."""
    segment = cache.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name, create=False)
        # NB: attaching re-registers the name with the resource tracker,
        # but workers share the parent's tracker process (its fd is
        # inherited under fork and passed explicitly under spawn) and
        # the tracker's cache is a set — the re-register is a no-op and
        # the parent's close/unlink stays the single cleanup point.
        # Unregistering here would strip the parent's registration.
        cache[name] = segment
    return segment


def _chunk_range_bytes(length: int, chunk_bytes: int, start: int, stop: int) -> Tuple[int, int]:
    """Byte span of chunk indices [start, stop) in a payload of ``length``."""
    return start * chunk_bytes, min(length, stop * chunk_bytes)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(tasks, results, codec_spec, dict_dir) -> None:
    """Worker loop: digest / encode / decode tasks over shared memory.

    Payload bytes are only ever read through attached segments; the
    queues carry addresses, digests, and (for restore) compressed
    chunks.  Every result includes the CPU seconds and byte counts the
    engine folds back into the main process's meters — and a completed
    span dict (wall time, worker pid/tid) the engine merges into the
    tracer when tracing is on, so worker activity lands on its own
    pid/tid track in the exported timeline.
    """
    codec: Optional[ChunkCodec] = None
    if codec_spec is not None:
        codec = make_chunk_codec(
            codec_spec["name"], codec_spec["level"], codec_spec["dictionary"]
        )
    attachments: Dict[str, "shared_memory.SharedMemory"] = {}
    decode_cache: Dict[tuple, ChunkCodec] = {}

    def load_dictionary(digest: str) -> bytes:
        if not dict_dir:
            raise KeyError(digest)
        with open(os.path.join(dict_dir, digest), "rb") as handle:
            return handle.read()

    while True:
        task = tasks.get()
        if task is None:
            break
        kind, task_id = task[0], task[1]
        started = time.process_time()
        started_us = _trace.now_us()

        def task_span(nbytes: int) -> List[dict]:
            return [
                _trace.complete_span_dict(
                    f"worker-{kind}",
                    started_us,
                    _trace.now_us(),
                    {"task_id": task_id, "bytes": nbytes},
                )
            ]

        try:
            if kind == "digest":
                _, _, name, offset, length, chunk_bytes, start, stop = task
                segment = _attach_segment(attachments, name)
                lo, hi = _chunk_range_bytes(length, chunk_bytes, start, stop)
                view = segment.buf[offset + lo:offset + hi]
                digests = []
                for pos in range(0, max(1, hi - lo), chunk_bytes) if hi > lo else [0]:
                    chunk = view[pos:pos + chunk_bytes]
                    digests.append(hashlib.sha256(chunk).hexdigest())
                view.release()
                cpu = time.process_time() - started
                results.put(
                    ("digest", task_id, digests, hi - lo, cpu, task_span(hi - lo))
                )
            elif kind == "encode":
                (_, _, name, offset, length, chunk_bytes, indices,
                 out_name, out_offset) = task
                segment = _attach_segment(attachments, name)
                out_segment = _attach_segment(attachments, out_name)
                entries = []
                raw_in = 0
                enc_out = 0
                cursor = 0
                for index in indices:
                    lo, hi = _chunk_range_bytes(length, chunk_bytes, index, index + 1)
                    chunk = segment.buf[offset + lo:offset + hi]
                    encoded = encode_chunk_file(codec, [chunk]) if codec else None
                    raw_in += hi - lo
                    if encoded is None:
                        entries.append((index, -1, 0))
                    else:
                        out_segment.buf[out_offset + cursor:
                                        out_offset + cursor + len(encoded)] = encoded
                        entries.append((index, cursor, len(encoded)))
                        cursor += len(encoded)
                        enc_out += len(encoded)
                    chunk.release()
                cpu = time.process_time() - started
                results.put(
                    ("encode", task_id, entries, raw_in, enc_out, cpu,
                     task_span(raw_in))
                )
            elif kind == "decode":
                _, _, blobs = task
                from .codec import decode_chunk_file

                raws = [decode_chunk_file(blob, load_dictionary, decode_cache)
                        for blob in blobs]
                cpu = time.process_time() - started
                nbytes = sum(len(raw) for raw in raws)
                results.put(("decode", task_id, raws, cpu, task_span(nbytes)))
            else:
                results.put(("error", task_id, f"unknown task kind {kind!r}"))
        except Exception as exc:  # noqa: BLE001 - reported to the engine
            try:
                results.put(("error", task_id, f"{type(exc).__name__}: {exc}"))
            except Exception:  # pragma: no cover - result queue gone
                break
    for segment in attachments.values():  # pragma: no cover - exit path
        try:
            segment.close()
        except BufferError:
            pass


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------


class ChunkWorkerPool:
    """A small process pool speaking the digest/encode/decode protocol.

    Lazily started; ``process_batch`` submits a list of tasks and
    gathers their results, raising :class:`WorkerPoolError` when a
    worker dies, reports an error, or the pool cannot start at all —
    the engine catches that and falls back in-process.
    """

    def __init__(
        self,
        workers: int,
        codec_spec: Optional[Dict[str, object]] = None,
        dict_dir: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.codec_spec = codec_spec
        self.dict_dir = dict_dir
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._tasks = None
        self._results = None
        self._procs: List[multiprocessing.Process] = []
        self._next_id = 0
        self._started = False
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def _spawn_one(self) -> multiprocessing.Process:
        """Start one worker (the seam degradation tests patch)."""
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._tasks, self._results, self.codec_spec, self.dict_dir),
            name="ckpt-chunk-worker",
            daemon=True,
        )
        with warnings.catch_warnings():
            # Python 3.12+ deprecation-warns fork in multi-threaded
            # processes; the forked child only runs _worker_main, which
            # touches nothing inherited, so the classic pattern is safe.
            warnings.simplefilter("ignore", DeprecationWarning)
            proc.start()
        return proc

    def start(self) -> None:
        if self._started:
            return
        if self._closed:
            raise WorkerPoolError("pool is closed")
        try:
            self._tasks = self._ctx.Queue()
            self._results = self._ctx.Queue()
            self._procs = [self._spawn_one() for _ in range(self.workers)]
        except Exception as exc:
            self._abort()
            raise WorkerPoolError(f"worker pool failed to start: {exc}") from exc
        self._started = True

    def alive(self) -> int:
        return sum(1 for proc in self._procs if proc.is_alive())

    def _abort(self) -> None:
        _reap_processes(self._procs, grace_seconds=5.0)
        self._procs = []
        for q in (self._tasks, self._results):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._tasks = self._results = None
        self._started = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._started:
            try:
                for _ in self._procs:
                    self._tasks.put(None)
                for proc in self._procs:
                    proc.join(timeout=5)
            except Exception:  # pragma: no cover - queues already broken
                pass
            # _abort escalates terminate → join → kill → join for any
            # worker that ignored the sentinel (or masks SIGTERM).
            self._abort()

    # -- batched request/response --------------------------------------
    def submit(self, kind: str, *payload) -> int:
        self.start()
        task_id = self._next_id
        self._next_id += 1
        self._tasks.put((kind, task_id) + payload)
        _POOL_TASKS.labels(kind=kind).inc()
        return task_id

    def collect(self, task_ids: Sequence[int]) -> Dict[int, tuple]:
        """Gather results for ``task_ids``, watching worker liveness."""
        pending = set(task_ids)
        gathered: Dict[int, tuple] = {}
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while pending:
            # Deadline first, every iteration: a stream of stale results
            # for other batches' task_ids keeps the queue non-empty, so
            # checking only in the Empty branch could spin forever.
            if time.monotonic() > deadline:
                _POOL_DEADLINE_EXCEEDED.inc()
                raise WorkerPoolError("worker pool wedged: batch deadline exceeded")
            try:
                result = self._results.get(timeout=_HEARTBEAT_SECONDS)
            except queue_module.Empty:
                _POOL_HEARTBEAT_TIMEOUTS.inc()
                if self.alive() < len(self._procs):
                    _POOL_WORKER_DEATHS.inc(len(self._procs) - self.alive())
                    raise WorkerPoolError(
                        f"worker died mid-batch ({self.alive()}/{len(self._procs)} alive)"
                    )
                continue
            if result[0] == "error":
                raise WorkerPoolError(f"worker task failed: {result[2]}")
            task_id = result[1]
            if task_id in pending:
                pending.remove(task_id)
                gathered[task_id] = result
        return gathered


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class _ScratchSegment:
    """A one-shot output segment for encode results.

    Used when the staging arena cannot lend an output region without
    blocking (the input region already occupies it) — a dedicated
    segment avoids the self-deadlock a blocking acquire would be.
    """

    def __init__(self, nbytes: int) -> None:
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self.region = SharedRegion(self._shm.name, 0, nbytes)
        self._view: Optional[memoryview] = None
        self._closed = False
        _LIVE_SEGMENT_OWNERS.add(self)

    def view(self) -> memoryview:
        if self._view is None:
            self._view = memoryview(self._shm.buf)
        return self._view

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._view is not None:
            try:
                self._view.release()
            except BufferError:  # pragma: no cover - exported sub-views
                pass
            self._view = None
        _close_segment(self._shm, unlink=True)


class ParallelChunkEngine:
    """Fan chunk digest/encode/decode work out to worker processes.

    The dedup backend drives it per payload:

    1. :meth:`chunk_digests` — stage the payload into shared memory if
       it is not already there (the async pipeline's staging copy lands
       in the same pool, so usually it is), split the chunk range
       across workers, and seed the rope's digest cache with the
       results.  Skipped entirely when the manager's delta-save sweep
       already hashed the rope — one hash pass, wherever it runs.
    2. :meth:`encode_chunks` — compress exactly the novel chunk indices
       into an output region; returns framed encoded file bodies (or
       ``None`` per chunk for incompressible ones).
    3. :meth:`finish` — release any staging the engine acquired for the
       payload.

    Any failure — spawn, worker death, poisoned segment — disables the
    engine with a :class:`RuntimeWarning`; callers observe ``None`` /
    a cold cache and recompute in-process.  Correctness never depends
    on the pool.
    """

    def __init__(
        self,
        workers: int,
        codec: Optional[ChunkCodec] = None,
        staging: Optional[SharedStagingPool] = None,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
        dict_dir: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.codec = codec
        self.staging = staging if staging is not None else SharedStagingPool(arena_bytes)
        self._owns_staging = staging is None
        self.enabled = True
        self.fallback_reason: Optional[str] = None
        self.pool = ChunkWorkerPool(
            workers,
            codec_spec=codec.spec() if codec is not None else None,
            dict_dir=dict_dir,
            start_method=start_method,
        )
        # Payloads the engine staged itself (sync path): id -> slice.
        self._staged: Dict[int, SharedSlice] = {}
        # Aggregate worker-side accounting (inspectable by tests/bench).
        self.worker_cpu_seconds = 0.0
        self.tasks_dispatched = 0

    @staticmethod
    def _merge_worker_spans(wspans) -> None:
        """Fold a task's worker-side spans into the tracer (if tracing)."""
        if wspans and _trace.tracing():
            _trace.merge_spans(wspans)

    # -- degradation ----------------------------------------------------
    def _disable(self, what: str, exc: Exception) -> None:
        self.enabled = False
        self.fallback_reason = f"{what}: {exc}"
        _POOL_DEGRADATIONS.inc()
        warnings.warn(
            f"parallel save engine disabled ({what}: {exc}); "
            f"falling back to the in-process save path",
            RuntimeWarning,
            stacklevel=3,
        )
        try:
            self.pool.close()
        except Exception:  # pragma: no cover - best effort
            pass

    def _plan(self, n_chunks: int) -> List[Tuple[int, int]]:
        """Split ``n_chunks`` into ≤workers contiguous index ranges."""
        tasks = min(self.workers, n_chunks)
        base, extra = divmod(n_chunks, tasks)
        ranges = []
        start = 0
        for index in range(tasks):
            stop = start + base + (1 if index < extra else 0)
            ranges.append((start, stop))
            start = stop
        return ranges

    # -- staging --------------------------------------------------------
    def _region_of(self, payload: PayloadFrames) -> Optional[SharedRegion]:
        """Address of the payload in shared memory, staging if needed.

        Payloads that came through the async pipeline's
        :class:`SharedStagingPool` already carry a region (zero extra
        copies); the sync path stages here — the one staging copy the
        meter budget allows.
        """
        if payload.region is not None:
            return payload.region
        slice_ = self.staging.try_acquire(payload.nbytes)
        if slice_ is None:
            return None  # arena contended: not worth blocking for
        staged = payload.snapshot_into(slice_)  # counts bytes_copied
        self._staged[id(payload)] = slice_
        payload.region = staged.region
        return staged.region

    def finish(self, payload: PayloadFrames) -> None:
        """Release engine-owned staging for ``payload`` (idempotent)."""
        slice_ = self._staged.pop(id(payload), None)
        if slice_ is not None:
            payload.region = None
            self.staging.release(slice_)

    # -- digest ---------------------------------------------------------
    def chunk_digests(self, payload: PayloadFrames, chunk_bytes: int) -> List[str]:
        """Chunk digests of ``payload``, computed by the worker pool.

        Falls back to the rope's own single-sweep
        :meth:`~repro.ckpt.serializer.PayloadFrames.chunk_digests` when
        the engine is disabled, the payload is trivial, or anything
        goes wrong mid-flight.  Either way the digests land in the
        rope's cache — downstream layers cannot tell the difference.
        """
        cached = payload.peek_digests(chunk_bytes)
        if cached is not None:
            return cached
        if not self.enabled or payload.nbytes < chunk_bytes:
            return payload.chunk_digests(chunk_bytes)
        region = None
        try:
            region = self._region_of(payload)
        except Exception as exc:  # poisoned arena / segment
            self._disable("shared-memory staging failed", exc)
        if region is None:
            return payload.chunk_digests(chunk_bytes)
        n_chunks = (payload.nbytes + chunk_bytes - 1) // chunk_bytes
        try:
            ids = [
                self.pool.submit(
                    "digest", region.segment, region.offset, region.nbytes,
                    chunk_bytes, start, stop,
                )
                for start, stop in self._plan(n_chunks)
            ]
            self.tasks_dispatched += len(ids)
            results = self.pool.collect(ids)
        except WorkerPoolError as exc:
            self._disable("digest fan-out failed", exc)
            return payload.chunk_digests(chunk_bytes)
        digests: List[str] = []
        hashed = 0
        for task_id in ids:
            _, _, part, nbytes, cpu, wspans = results[task_id]
            digests.extend(part)
            hashed += nbytes
            self.worker_cpu_seconds += cpu
            self._merge_worker_spans(wspans)
        payload.seed_digests(chunk_bytes, digests)
        if payload.meters is not None:
            payload.meters.count_hashed(hashed)
        return digests

    # -- encode ---------------------------------------------------------
    def encode_chunks(
        self, payload: PayloadFrames, chunk_bytes: int, indices: Sequence[int]
    ) -> Optional[Dict[int, Optional[bytes]]]:
        """Encode the chunks at ``indices`` in the worker pool.

        Returns ``{index: framed encoded body or None (store raw)}``,
        or ``None`` when the engine cannot help (disabled, no codec, no
        shared region) — the caller then encodes in-process.  Byte
        counts reported by the workers are folded into the payload's
        meters, keeping the "≤1 compression pass per persisted byte"
        invariant measurable end-to-end.
        """
        if not self.enabled or self.codec is None or not indices:
            return None
        region = payload.region
        if region is None:
            try:
                region = self._region_of(payload)
            except Exception as exc:
                self._disable("shared-memory staging failed", exc)
                return None
        if region is None:
            return None
        plans = self._plan(len(indices))
        sizes = [
            _chunk_range_bytes(region.nbytes, chunk_bytes, index, index + 1)
            for index in indices
        ]
        raw_lens = [hi - lo for lo, hi in sizes]
        out_needed = sum(raw_lens)
        out_slice = self.staging.try_acquire(out_needed)
        scratch = None
        if out_slice is not None:
            out_region, out_view = out_slice.region, out_slice.view
        else:
            try:
                scratch = _ScratchSegment(out_needed)
            except Exception as exc:
                self._disable("scratch segment allocation failed", exc)
                return None
            out_region, out_view = scratch.region, scratch.view()
        try:
            ids = []
            spans = []
            cursor = 0
            for start, stop in plans:
                group = list(indices[start:stop])
                group_bytes = sum(raw_lens[start:stop])
                ids.append(self.pool.submit(
                    "encode", region.segment, region.offset, region.nbytes,
                    chunk_bytes, group, out_region.segment,
                    out_region.offset + cursor,
                ))
                spans.append(cursor)
                cursor += group_bytes
            self.tasks_dispatched += len(ids)
            results = self.pool.collect(ids)
            encoded: Dict[int, Optional[bytes]] = {}
            raw_in = 0
            enc_out = 0
            for task_id, base in zip(ids, spans):
                _, _, entries, task_raw, task_out, cpu, wspans = results[task_id]
                raw_in += task_raw
                enc_out += task_out
                self.worker_cpu_seconds += cpu
                self._merge_worker_spans(wspans)
                for index, rel_off, enc_len in entries:
                    if enc_len <= 0:
                        encoded[index] = None
                    else:
                        lo = base + rel_off
                        encoded[index] = bytes(out_view[lo:lo + enc_len])
            if payload.meters is not None:
                # Incompressible chunks count raw-in with themselves as
                # "out" (they hit the wire raw): the pass still ran once.
                raw_kept = sum(
                    raw_lens[pos] for pos, index in enumerate(indices)
                    if encoded.get(index) is None
                )
                payload.meters.count_compressed(raw_in, enc_out + raw_kept)
            return encoded
        except WorkerPoolError as exc:
            self._disable("encode fan-out failed", exc)
            return None
        finally:
            if out_slice is not None:
                self.staging.release(out_slice)
            if scratch is not None:
                scratch.close()

    # -- decode (restore fan-out) ---------------------------------------
    def decode_chunks(self, blobs: Sequence[bytes]) -> Optional[List[bytes]]:
        """Decompress encoded chunk bodies in the worker pool.

        Restore-side fan-out: compressed bodies travel over the queue
        (they are already small), raw bytes come back.  Returns ``None``
        when the engine is unavailable — the caller decodes serially.
        """
        if not self.enabled or not blobs:
            return None
        try:
            plans = self._plan(len(blobs))
            ids = [
                self.pool.submit("decode", [bytes(blob) for blob in blobs[start:stop]])
                for start, stop in plans
            ]
            self.tasks_dispatched += len(ids)
            results = self.pool.collect(ids)
        except WorkerPoolError as exc:
            self._disable("decode fan-out failed", exc)
            return None
        raws: List[bytes] = []
        for task_id in ids:
            _, _, part, cpu, wspans = results[task_id]
            raws.extend(part)
            self.worker_cpu_seconds += cpu
            self._merge_worker_spans(wspans)
        return raws

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self.pool.close()
        for slice_ in self._staged.values():  # pragma: no cover - leak guard
            self.staging.release(slice_)
        self._staged.clear()
        if self._owns_staging:
            self.staging.close()

    def __enter__(self) -> "ParallelChunkEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
