"""Chaos campaigns: seeded randomized fault injection at fleet scale.

A campaign is thousands of short, seeded runs against the *live*
storage stack.  Each run builds a fresh store (dedup, tiered, or
async-tiered), executes a randomized operation plan (puts, overwrites,
deletes, reads, gc, flush), and kills the store mid-operation through
the crash-injection seams every disk-backed tier already exposes via
``fault_hook`` — mid chunk write, mid journal append, mid compaction,
mid upload claim, mid remote payload write — plus, for parallel runs,
SIGKILL of live :class:`~repro.ckpt.parallel.ChunkWorkerPool` worker
processes.  After every kill the run recovers through an escalating
ladder (retry → reopen → fsck --repair → report) with attempt tracking
and circular-failure detection, and must end fsck-clean with every
surviving key readable and byte-exact — or the campaign fails carrying
the campaign seed, the per-run seed, and a copy-pasteable repro command.

Everything is derived from ``(campaign_seed, run_index)``: re-running a
campaign with the same seed replays the identical kill schedule, and
re-running one index reproduces one failure in isolation.

The campaign doubles as the *online adaptive loop*'s test bed: injected
kills feed a virtual-clock fault stream into an
:class:`~repro.core.adaptive.OnlineAdaptiveController`, whose decisions
(checkpoint interval, dynamic k, persist-tier choice) retune the
following runs live — a fault-rate step change mid-campaign visibly
moves the knobs.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import shutil
import signal
import tempfile
import threading
import time
import warnings
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ckpt.async_writer import AsyncWriteBackend, AsyncWriteError
from ..ckpt.backend import CrashInjected, KVStoreError
from ..ckpt.dedup import DedupBackend
from ..ckpt.sharded import ShardedDiskKVStore
from ..ckpt.tiered import RemoteUnavailable, SimulatedObjectStore, TieredBackend
from ..core.adaptive import OnlineAdaptiveController, OnlineFaultRateEstimator
from ..io.scheduler import IOScheduler, QoS
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import span as _span
from .traces import FaultTrace, trace_from_times

#: Arm target meaning "the nth seam hit of any name".
ANY = "any"

#: Crash seams per backend kind.  The dedup tier owns the chunk store,
#: the refs journal and the manifest journal; the tiered stack adds its
#: claim journal, the upload pipeline, and the remote sharded store's
#: payload/journal/compaction seams.  The async stack drives the same
#: tiered seams from its writer thread.
#: Seams the shared I/O scheduler fires for every owner that routes
#: work through it (gc/compaction as MAINTENANCE, async saves, tiered
#: uploads): a kill mid-dispatch (before the task body runs), mid-
#: cancel, and at first byte-budget exhaustion.  Any of these may
#: simply never fire in a given run (e.g. the budget never fills) —
#: a no-fire run completing clean is an acceptable outcome.
IOSCHED_SEAMS: Tuple[str, ...] = (
    "iosched:dispatch",
    "iosched:cancel",
    "iosched:budget-exhausted",
)

DEDUP_SEAMS: Tuple[str, ...] = (
    "chunk:tmp-written",
    "chunk:durable",
    "refs:mid-append",
    "refs:appended",
    "refs:compact-tmp-written",
    "manifest:mid-append",
    "manifest:appended",
    "manifest:compact-tmp-written",
) + IOSCHED_SEAMS
TIERED_SEAMS: Tuple[str, ...] = DEDUP_SEAMS + (
    "tier:mid-append",
    "tier:appended",
    "tier:compact-tmp-written",
    "upload:remote-durable",
    "payload:tmp-written",
    "payload:durable",
    "journal:mid-append",
    "journal:appended",
    "compact:tmp-written",
)

BACKENDS = ("dedup", "tiered", "async-tiered")

#: Recovery ladder rungs, in escalation order.
RUNG_RETRY = "retry"
RUNG_REOPEN = "reopen"
RUNG_FSCK_REPAIR = "fsck-repair"
RUNG_REPORT = "report"

#: A seam that killed the same run this many times is circling: the
#: injector is disarmed for the rest of the run and recovery starts at
#: the fsck rung (the Auto-Claude recovery-manager idiom — repeated
#: identical failures mean the cheap fixes are not fixing anything).
CIRCULAR_THRESHOLD = 3


def seams_for(backend: str) -> Tuple[str, ...]:
    if backend == "dedup":
        return DEDUP_SEAMS
    if backend in ("tiered", "async-tiered"):
        return TIERED_SEAMS
    raise ValueError(f"unknown backend {backend!r} (want one of {BACKENDS})")


def repro_command(backend: str, campaign_seed: int, runs: int, run_index: int) -> str:
    return (
        f"PYTHONPATH=src python -m repro.cli chaos run"
        f" --backend {backend} --seed {campaign_seed}"
        f" --runs {runs} --run-index {run_index}"
    )


class ChaosFailure(AssertionError):
    """A run that could not be verified — always carries the seeds and
    the exact command line that reproduces it."""

    def __init__(
        self,
        message: str,
        backend: str,
        campaign_seed: int,
        runs: int,
        run_index: int,
        run_seed: int,
    ) -> None:
        super().__init__(
            f"{message}\n"
            f"  backend={backend} campaign_seed={campaign_seed}"
            f" run_index={run_index} run_seed={run_seed}\n"
            f"  repro: {repro_command(backend, campaign_seed, runs, run_index)}"
        )
        self.backend = backend
        self.campaign_seed = campaign_seed
        self.run_index = run_index
        self.run_seed = run_seed


class SeamInjector:
    """The ``fault_hook`` a campaign installs on a store.

    Counts every seam hit (``seen``), and when armed raises
    :class:`CrashInjected` at the matching hit: either a named seam's
    ``nth`` firing, or the ``nth`` hit of :data:`ANY` seam.  One arm =
    at most one kill; recovery runs with the injector disarmed unless
    the run plan re-arms it.
    """

    def __init__(self) -> None:
        self.seen: Counter = Counter()
        self.kills: List[Tuple[str, str]] = []  # (armed target, actual seam)
        self.enabled = True
        self._target: Optional[str] = None
        self._countdown = 0

    def arm(self, target: str, nth: int = 1) -> None:
        if nth < 1:
            raise ValueError("nth must be >= 1")
        self._target = target
        self._countdown = nth

    def disarm(self) -> None:
        self._target = None

    @property
    def armed(self) -> bool:
        return self._target is not None

    def __call__(self, point: str) -> None:
        self.seen[point] += 1
        if not self.enabled or self._target is None:
            return
        if self._target != ANY and self._target != point:
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        target = self._target
        self._target = None
        self.kills.append((target, point))
        raise CrashInjected(f"chaos kill at {point} (armed {target})")


# ---------------------------------------------------------------------------
# Expected-state model: what the store must contain after recovery.
# ---------------------------------------------------------------------------


def _entry_for(run_seed: int, key: str, version: int) -> Dict[str, np.ndarray]:
    # Stable across processes (str.hash is salted per interpreter).
    key_token = int.from_bytes(hashlib.sha256(key.encode()).digest()[:2], "big")
    rng = np.random.default_rng((run_seed, key_token, version))
    size = int(rng.integers(200, 900))
    return {"p": rng.integers(0, 256, size=size, endpoint=False).astype(np.uint8)}


@dataclass
class _KeyState:
    """One key's acknowledged state plus in-flight uncertainty.

    ``committed`` is the version known durable (None = absent);
    ``maybe`` lists versions that were accepted but whose durability a
    crash left undecided (``None`` in the list means "may be absent").
    Sync stores have at most one in-flight op; the async pipeline can
    leave everything since the last flush undecided.
    """

    committed: Optional[int] = None
    maybe: List[Optional[int]] = field(default_factory=list)

    @property
    def allowed(self) -> List[Optional[int]]:
        out: List[Optional[int]] = [self.committed]
        for version in self.maybe:
            if version not in out:
                out.append(version)
        return out

    def settle(self, observed: Optional[int]) -> None:
        self.committed = observed
        self.maybe.clear()


class _StateModel:
    """Expected logical contents of the store under test."""

    def __init__(self, run_seed: int) -> None:
        self.run_seed = run_seed
        self.keys: Dict[str, _KeyState] = {}

    def state(self, key: str) -> _KeyState:
        return self.keys.setdefault(key, _KeyState())

    def begin_put(self, key: str, version: int) -> None:
        self.state(key).maybe.append(version)

    def ack_put(self, key: str, version: int, flushed: bool) -> None:
        state = self.state(key)
        if flushed:
            state.settle(version)
        # Unflushed (async) acks stay in ``maybe`` until a barrier.

    def begin_delete(self, key: str) -> None:
        self.state(key).maybe.append(None)

    def ack_delete(self, key: str, flushed: bool) -> None:
        if flushed:
            self.state(key).settle(None)

    def ack_flush(self) -> None:
        for state in self.keys.values():
            if state.maybe:
                state.settle(state.maybe[-1])

    def live_keys(self) -> List[str]:
        return [k for k, s in self.keys.items() if s.committed is not None or s.maybe]

    def observe(self, store) -> List[str]:
        """Reconcile uncertainty against the recovered store.

        Every key must hold one of its allowed versions, byte-exact with
        the matching stamp; keys whose only allowed state is a concrete
        version must be present.  Returns human-readable violations.
        """
        problems: List[str] = []
        for key, state in sorted(self.keys.items()):
            allowed = state.allowed
            present = store.has(key)
            if not present:
                if None in allowed:
                    state.settle(None)
                    continue
                problems.append(
                    f"key {key!r} missing (allowed versions {allowed})"
                )
                continue
            try:
                stamp = store.stamp_of(key)
                entry = store.get(key)
            except (KVStoreError, RemoteUnavailable) as exc:
                problems.append(f"key {key!r} unreadable: {exc}")
                continue
            matched = None
            for version in allowed:
                if version is None or version != stamp:
                    continue
                expected = _entry_for(self.run_seed, key, version)
                if set(entry) == set(expected) and all(
                    np.array_equal(entry[f], expected[f]) for f in expected
                ):
                    matched = version
                    break
            if matched is None:
                problems.append(
                    f"key {key!r} holds stamp {stamp}, not byte-exact with any"
                    f" allowed version {allowed}"
                )
                continue
            state.settle(matched)
        return problems


# ---------------------------------------------------------------------------
# Store construction / teardown per run
# ---------------------------------------------------------------------------


@dataclass
class _Stack:
    """One run's store plus the handles recovery needs."""

    store: object  # what the op plan talks to
    base: object  # the tiered/dedup store underneath (fsck/gc live here)
    injector: SeamInjector

    def fsck(self, repair: bool = False):
        return self.base.fsck(repair=repair)

    def gc(self):
        return self.base.gc()

    def abandon(self) -> None:
        """The "process" died: drop the instance without flushing."""
        if isinstance(self.store, AsyncWriteBackend):
            self.store.abort()
        # Sync stores with inline uploads hold no threads; the instance
        # is simply dropped, like the crash batteries do.


def _build_stack(
    backend: str,
    root: str,
    run_seed: int,
    injector: SeamInjector,
    remote_fault_rate: float = 0.04,
    local_keep_stamps: Optional[int] = 2,
    parallel_workers: int = 0,
) -> _Stack:
    """Construct a fresh (or reopened) stack over ``root``.

    Construction runs with the injector detached — reopen replays
    journals and re-schedules pending uploads, and those are *recovery*,
    not operations the campaign is trying to kill (the seams still get
    exercised there by later runs' ops).  ``upload_workers=0`` keeps
    every tiered seam on the caller thread, which is what makes a
    seeded kill schedule deterministic.
    """
    dedup_opts = dict(
        # Small chunks so every entry spans several chunks (chunk seams
        # fire repeatedly); tiny compaction thresholds so journal
        # rewrites happen inside short runs.  Worker-kill runs shrink
        # chunks further so every put engages the parallel engine.
        chunk_bytes=64 if parallel_workers else 256,
        compact_min_records=4,
        compact_garbage_ratio=1.5,
        parallel_workers=parallel_workers,
        start_method="fork" if parallel_workers else None,
    )
    if backend == "dedup":
        store = DedupBackend(root, **dedup_opts)
        store.fault_hook = injector
        return _Stack(store=store, base=store, injector=injector)
    if backend in ("tiered", "async-tiered"):
        local = DedupBackend(os.path.join(root, "local"), **dedup_opts)
        remote = SimulatedObjectStore(
            ShardedDiskKVStore(
                os.path.join(root, "remote"),
                compact_min_records=4,
                compact_garbage_ratio=1.5,
            ),
            fault_rate=remote_fault_rate,
            seed=run_seed,
        )
        tiered = TieredBackend(
            local,
            remote,
            journal_path=os.path.join(root, "tier.jsonl"),
            upload_workers=0,
            upload_max_retries=4,
            backoff_base_seconds=1e-4,
            backoff_max_seconds=1e-3,
            backoff_seed=run_seed,
            hedge_after_seconds=None,
            local_keep_stamps=local_keep_stamps,
        )
        tiered.fault_hook = injector
        if backend == "tiered":
            return _Stack(store=tiered, base=tiered, injector=injector)
        wrapper = AsyncWriteBackend(tiered, max_pending=8, arena_bytes=1 << 20)
        return _Stack(store=wrapper, base=tiered, injector=injector)
    raise ValueError(f"unknown backend {backend!r}")


# ---------------------------------------------------------------------------
# One run
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    """Outcome of one chaos run."""

    index: int
    seed: int
    target: Optional[str]  # armed seam, ANY, "worker-kill", or None
    kills: List[Tuple[str, str]] = field(default_factory=list)
    seams_seen: int = 0
    recovery_actions: List[str] = field(default_factory=list)
    escalations: int = 0
    circular: bool = False
    worker_kill: bool = False
    ok: bool = False

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "target": self.target,
            "kills": [list(k) for k in self.kills],
            "seams_seen": self.seams_seen,
            "recovery_actions": list(self.recovery_actions),
            "escalations": self.escalations,
            "circular": self.circular,
            "worker_kill": self.worker_kill,
            "ok": self.ok,
        }


def run_seed_for(campaign_seed: int, run_index: int) -> int:
    token = f"{campaign_seed}:{run_index}".encode()
    return int.from_bytes(hashlib.sha256(token).digest()[:4], "big")


class _RunAborted(Exception):
    """Internal: a crash episode needs the recovery ladder."""

    def __init__(self, kind: str, original: BaseException) -> None:
        super().__init__(kind)
        self.kind = kind  # "crash" or "transient"
        self.original = original


class ChaosRun:
    """Executes one seeded run: plan, kill(s), recovery ladder, verify."""

    def __init__(
        self,
        backend: str,
        campaign_seed: int,
        runs: int,
        run_index: int,
        root: str,
        ops: int = 12,
        max_kills: int = 3,
        target: Optional[str] = None,
        nth: int = 1,
        worker_kill: bool = False,
        remote_fault_rate: float = 0.04,
        local_keep_stamps: Optional[int] = 2,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.backend = backend
        self.campaign_seed = campaign_seed
        self.runs = runs
        self.index = run_index
        self.seed = run_seed_for(campaign_seed, run_index)
        self.root = root
        self.ops = ops
        self.max_kills = max_kills
        self.target = target
        self.nth = nth
        self.worker_kill = worker_kill
        self.remote_fault_rate = remote_fault_rate
        self.local_keep_stamps = local_keep_stamps
        self.registry = registry if registry is not None else get_registry()
        self.rng = random.Random(f"{campaign_seed}:run:{run_index}")
        self.model = _StateModel(self.seed)
        self.result = RunResult(
            index=run_index,
            seed=self.seed,
            target="worker-kill" if worker_kill else target,
            worker_kill=worker_kill,
        )
        self._episode_counter: Counter = Counter()
        self._c_faults = self.registry.counter(
            "moc_chaos_faults_injected_total",
            "Chaos kills injected, by seam",
            labelnames=("seam",),
        )
        self._c_recovery = self.registry.counter(
            "moc_chaos_recovery_actions_total",
            "Recovery ladder actions taken, by rung",
            labelnames=("action",),
        )
        self._c_escalations = self.registry.counter(
            "moc_chaos_escalations_total",
            "Recoveries that needed more than their first rung",
        )
        self._c_worker_kills = self.registry.counter(
            "moc_chaos_worker_kills_total",
            "Chunk-pool worker processes SIGKILLed",
        )

    def _fail(self, message: str) -> ChaosFailure:
        return ChaosFailure(
            message,
            backend=self.backend,
            campaign_seed=self.campaign_seed,
            runs=self.runs,
            run_index=self.index,
            run_seed=self.seed,
        )

    # -- plan ------------------------------------------------------------
    def _plan(self) -> List[Tuple]:
        """The op sequence.  A fixed prefix walks every mutation path
        (novel puts, dedup overwrite, delete, gc, flush) so a targeted
        seam is guaranteed traffic; the seeded tail randomizes order and
        key pressure.  Async stacks replace deletes with overwrites
        (queued delete-vs-put ordering is the writer's concern, not this
        campaign's) — the extra churn keeps remote-compaction seams in
        reach of their targeted runs."""
        plan: List[Tuple] = [
            ("put", "k0", 1),
            ("put", "k1", 1),
            ("put", "k0", 2),
            ("put", "k2", 1),
            ("flush",),
            ("delete", "k1"),
            ("gc",),
            ("iosched",),
            ("put", "k3", 1),
            ("get", "k0"),
        ]
        versions = {"k0": 2, "k1": 1, "k2": 1, "k3": 1}
        if self.backend == "async-tiered":
            def overwrite(key):
                versions[key] = versions.get(key, 0) + 1
                return ("put", key, versions[key])

            plan = [
                overwrite(op[1]) if op[0] == "delete" else op for op in plan
            ]
        keys = ["k0", "k1", "k2", "k3", "k4", "k5"]
        for _ in range(max(0, self.ops - len(plan))):
            roll = self.rng.random()
            key = self.rng.choice(keys)
            if roll < 0.55:
                versions[key] = versions.get(key, 0) + 1
                plan.append(("put", key, versions[key]))
            elif roll < 0.65:
                if self.backend == "async-tiered":
                    plan.append(overwrite(key))
                else:
                    plan.append(("delete", key))
            elif roll < 0.8:
                plan.append(("get", key))
            elif roll < 0.9:
                plan.append(("flush",))
            else:
                plan.append(("gc",))
        plan.append(("flush",))
        plan.append(("gc",))
        plan.append(("flush",))
        return plan

    # -- op execution ----------------------------------------------------
    def _is_async(self) -> bool:
        return self.backend == "async-tiered"

    def _classify(self, exc: BaseException) -> Optional[str]:
        """Map an exception to an episode kind (None = not ours)."""
        seen = set()
        cause: Optional[BaseException] = exc
        while cause is not None and id(cause) not in seen:
            seen.add(id(cause))
            if isinstance(cause, CrashInjected):
                return "crash"
            cause = cause.__cause__ or cause.__context__
        if isinstance(exc, (RemoteUnavailable, AsyncWriteError, OSError)):
            return "transient"
        return None

    def _execute(self, stack: _Stack, op: Tuple) -> None:
        kind = op[0]
        flushed_ack = not self._is_async()
        if kind == "put":
            _, key, version = op
            self.model.begin_put(key, version)
            stack.store.put(key, _entry_for(self.seed, key, version), stamp=version)
            self.model.ack_put(key, version, flushed=flushed_ack)
        elif kind == "delete":
            _, key = op
            if not stack.store.has(op[1]):
                return
            self.model.begin_delete(key)
            stack.store.delete(key)
            self.model.ack_delete(key, flushed=flushed_ack)
        elif kind == "get":
            _, key = op
            try:
                stack.store.get(key)
            except KVStoreError:
                pass  # plan may read a deleted / never-written key
        elif kind == "flush":
            stack.store.flush()
            self.model.ack_flush()
        elif kind == "gc":
            if self._is_async():
                stack.store.flush()
                self.model.ack_flush()
            stack.gc()
        elif kind == "iosched":
            self._iosched_churn(stack)
        else:  # pragma: no cover - plan generator bug
            raise AssertionError(f"unknown op {op!r}")

    def _iosched_churn(self, stack: _Stack) -> None:
        """Exercise the I/O-scheduler seams the store ops cannot reach.

        ``iosched:dispatch`` already fires whenever a gc pass dispatches
        its MAINTENANCE task, but nothing in the op plan cancels a task
        or fills the byte budget — so this op drives both against a
        short-lived private scheduler: a running hold task pins the
        whole (tiny) budget, a queued victim is cancelled
        (``iosched:cancel``), and a further admission blocks on bytes
        (``iosched:budget-exhausted``).  The injector rides in as each
        task's ``fault``, so an armed seam kills the run mid-churn; the
        store itself is untouched, making every recovery rung trivially
        fsck-clean — which is exactly the contract: scheduler death must
        never corrupt a tier.
        """
        injector = stack.injector
        gate = threading.Event()

        def fault(point: str) -> None:
            # The budget seam firing IS the signal that the probe below
            # is blocked on bytes: release the hold so the churn settles
            # immediately (no timed sleep, no race — the probe cannot be
            # admitted until the hold's 64 bytes come back).
            try:
                injector(point)
            finally:
                if point == "iosched:budget-exhausted":
                    gate.set()

        with IOScheduler(
            workers=1, byte_budget=64, name=f"chaos-io-{self.index}"
        ) as sched:
            try:
                hold = sched.submit(
                    lambda: gate.wait(5.0),
                    QoS.MAINTENANCE,
                    nbytes=64,
                    label="chaos-hold",
                    fault=fault,
                )
                victim = sched.submit(
                    lambda: None,
                    QoS.MAINTENANCE,
                    label="chaos-victim",
                    fault=fault,
                )
                victim.cancel()
                probe = sched.submit(
                    lambda: None,
                    QoS.SAVE,
                    nbytes=1,
                    label="chaos-probe",
                    fault=fault,
                )
                probe.result(timeout=10.0)
                hold.result(timeout=10.0)
            finally:
                gate.set()

    @staticmethod
    def _engine_of(stack: _Stack):
        engine = getattr(stack.base, "engine", None)
        if engine is None:
            engine = getattr(getattr(stack.base, "local", None), "engine", None)
        return engine

    def _kill_workers(self, stack: _Stack) -> int:
        pool = getattr(self._engine_of(stack), "pool", None)
        procs = list(getattr(pool, "_procs", []) or [])
        killed = 0
        for proc in procs:
            if proc.is_alive() and proc.pid:
                os.kill(proc.pid, signal.SIGKILL)
                killed += 1
        if killed:
            self._c_worker_kills.inc(killed)
        return killed

    # -- recovery ladder -------------------------------------------------
    def _record_action(self, action: str) -> None:
        self.result.recovery_actions.append(action)
        self._c_recovery.labels(action=action).inc()

    def _reopen(self, stack: _Stack) -> _Stack:
        stack.abandon()
        injector = stack.injector
        armed = injector.armed
        injector.disarm()  # recovery is not a kill target
        fresh = _build_stack(
            self.backend,
            self.root,
            self.seed,
            injector,
            remote_fault_rate=self.remote_fault_rate,
            local_keep_stamps=self.local_keep_stamps,
        )
        if armed:
            # An armed-but-unfired injector stays disarmed: the plan
            # resumes and the run ends without that kill (counted as a
            # no-fire by the campaign).
            pass
        return fresh

    def _verify(self, stack: _Stack, stage: str) -> Optional[str]:
        report = stack.fsck(repair=False)
        if report.errors:
            return f"fsck errors after {stage}: {report.errors}"
        problems = self.model.observe(stack.base)
        if problems:
            return f"state divergence after {stage}: {problems}"
        return None

    def _recover(self, stack: _Stack, episode: _RunAborted, op: Tuple) -> _Stack:
        """Walk the ladder until verification passes or rungs run out."""
        seam = stack.injector.kills[-1][1] if episode.kind == "crash" and stack.injector.kills else str(op[0])
        self._episode_counter[seam] += 1
        if self._episode_counter[seam] > CIRCULAR_THRESHOLD:
            # Circular failure: the same seam keeps killing this run's
            # recovery attempts.  Stop injecting and take the heavy rung
            # directly.
            self.result.circular = True
            stack.injector.enabled = False
            rungs = [RUNG_FSCK_REPAIR]
        elif episode.kind == "transient":
            rungs = [RUNG_RETRY, RUNG_REOPEN, RUNG_FSCK_REPAIR]
        else:
            rungs = [RUNG_REOPEN, RUNG_FSCK_REPAIR]

        failure: Optional[str] = None
        for step, rung in enumerate(rungs):
            if step > 0:
                self.result.escalations += 1
                self._c_escalations.inc()
            with _span("chaos-recovery", rung=rung, seam=seam):
                try:
                    if rung == RUNG_RETRY:
                        self._record_action(RUNG_RETRY)
                        self._execute(stack, op)
                        failure = self._verify(stack, f"retry of {op[0]}")
                    elif rung == RUNG_REOPEN:
                        self._record_action(RUNG_REOPEN)
                        stack = self._reopen(stack)
                        failure = self._verify(stack, "reopen")
                    elif rung == RUNG_FSCK_REPAIR:
                        self._record_action(RUNG_FSCK_REPAIR)
                        stack = self._reopen(stack)
                        stack.fsck(repair=True)
                        failure = self._verify(stack, "fsck --repair")
                except Exception as exc:  # noqa: BLE001
                    kind = self._classify(exc)
                    if kind is None:
                        raise
                    # The recovery attempt itself died (e.g. a retried
                    # op hit the still-armed injector, or the remote
                    # flapped): that is a failed rung, escalate.
                    failure = f"rung {rung} died: {exc}"
                    continue
            if failure is None:
                return stack
        self._record_action(RUNG_REPORT)
        raise self._fail(f"recovery ladder exhausted: {failure}")

    # -- entry point -----------------------------------------------------
    def execute(self) -> RunResult:
        injector = SeamInjector()
        stack = _build_stack(
            self.backend,
            self.root,
            self.seed,
            injector,
            remote_fault_rate=self.remote_fault_rate,
            local_keep_stamps=self.local_keep_stamps,
            parallel_workers=2 if self.worker_kill else 0,
        )
        plan = self._plan()
        kills_left = self.max_kills
        if self.target is not None:
            injector.arm(self.target, self.nth)
            kills_left -= 1
        killed_workers = False

        with _span(
            "chaos-run", backend=self.backend, index=self.index, seed=self.seed
        ), warnings.catch_warnings():
            # A SIGKILLed chunk pool downgrades the engine with a
            # RuntimeWarning; that is the behaviour under test, not a
            # condition to surface.
            warnings.simplefilter("ignore", RuntimeWarning)
            position = 0
            while position < len(plan):
                op = plan[position]
                if (
                    self.worker_kill
                    and not killed_workers
                    and position == 3  # after the pool has warmed up
                ):
                    killed_workers = self._kill_workers(stack) > 0
                try:
                    self._execute(stack, op)
                except Exception as exc:  # noqa: BLE001
                    kind = self._classify(exc)
                    if kind is None:
                        raise
                    if kind == "crash":
                        self._c_faults.labels(
                            seam=injector.kills[-1][1] if injector.kills else "?"
                        ).inc()
                    stack = self._recover(stack, _RunAborted(kind, exc), op)
                    # Re-arm for multi-kill runs targeting ANY seam.
                    if kills_left > 0 and self.target == ANY:
                        injector.arm(ANY, self.rng.randint(1, 10))
                        kills_left -= 1
                position += 1

            # An armed target that never fired stays a no-fire run; the
            # verification reads below must not become the kill.
            injector.disarm()
            failure = self._verify(stack, "final flush")
            if failure is not None:
                # End-of-run divergence without a crash episode: give
                # the ladder's heavy rung one chance before reporting.
                self.result.escalations += 1
                self._c_escalations.inc()
                self._record_action(RUNG_FSCK_REPAIR)
                stack = self._reopen(stack)
                stack.fsck(repair=True)
                failure = self._verify(stack, "final fsck --repair")
            if failure is not None:
                self._record_action(RUNG_REPORT)
                raise self._fail(failure)
            if self.worker_kill and not killed_workers:
                raise self._fail("worker-kill run found no live workers to kill")
            if self.worker_kill:
                engine = self._engine_of(stack)
                if engine is not None and engine.enabled:
                    raise self._fail(
                        "worker-kill run: engine still enabled after SIGKILL"
                    )
            # Clean teardown (the run survived; this is not a crash).
            try:
                stack.store.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

        self.result.kills = list(injector.kills)
        self.result.seams_seen = sum(injector.seen.values())
        self.result.ok = True
        return self.result


# ---------------------------------------------------------------------------
# The campaign controller
# ---------------------------------------------------------------------------


@dataclass
class CampaignConfig:
    """Everything a campaign derives its behaviour from."""

    backend: str = "tiered"
    runs: int = 100
    seed: int = 0
    ops_per_run: int = 12
    max_kills: int = 3
    worker_kill_runs: int = 2
    remote_fault_rate: float = 0.04
    #: Virtual-clock fault-rate schedule: ``base_rate`` kills per unit
    #: time, stepping to ``step_rate`` after ``step_at`` of the runs —
    #: the step change the online adaptive loop must react to.
    base_rate: float = 0.5
    step_rate: Optional[float] = None
    step_at: float = 0.5
    adaptive: bool = True
    o_save: float = 0.05

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        if not 0.0 < self.step_at <= 1.0:
            raise ValueError("step_at must be in (0, 1]")

    def rate_at(self, run_index: int) -> float:
        if self.step_rate is not None and run_index >= int(self.runs * self.step_at):
            return self.step_rate
        return self.base_rate


@dataclass
class CampaignResult:
    """Campaign outcome: aggregate counts, the fault trace, and the
    adaptive decision timeline.  ``digest()`` is a deterministic
    fingerprint — two same-seed campaigns must produce equal digests."""

    config: CampaignConfig
    runs_ok: int = 0
    runs_failed: int = 0
    kills_total: int = 0
    seam_kills: Counter = field(default_factory=Counter)
    recovery_actions: Counter = field(default_factory=Counter)
    escalations: int = 0
    circular_detections: int = 0
    worker_kills: int = 0
    no_fire_runs: int = 0
    fault_times: List[float] = field(default_factory=list)
    decisions: List[dict] = field(default_factory=list)
    run_results: List[dict] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.runs_failed == 0

    def trace(self) -> FaultTrace:
        horizon = max(self.fault_times, default=0.0) or float(self.config.runs)
        return trace_from_times(self.fault_times, horizon=horizon)

    def as_dict(self) -> dict:
        return {
            "config": {
                "backend": self.config.backend,
                "runs": self.config.runs,
                "seed": self.config.seed,
                "ops_per_run": self.config.ops_per_run,
                "max_kills": self.config.max_kills,
                "worker_kill_runs": self.config.worker_kill_runs,
                "remote_fault_rate": self.config.remote_fault_rate,
                "base_rate": self.config.base_rate,
                "step_rate": self.config.step_rate,
                "step_at": self.config.step_at,
                "adaptive": self.config.adaptive,
                "o_save": self.config.o_save,
            },
            "runs_ok": self.runs_ok,
            "runs_failed": self.runs_failed,
            "kills_total": self.kills_total,
            "seam_kills": dict(sorted(self.seam_kills.items())),
            "recovery_actions": dict(sorted(self.recovery_actions.items())),
            "escalations": self.escalations,
            "circular_detections": self.circular_detections,
            "worker_kills": self.worker_kills,
            "no_fire_runs": self.no_fire_runs,
            "fault_times": self.fault_times,
            "decisions": self.decisions,
            "run_results": self.run_results,
            "wall_seconds": self.wall_seconds,
        }

    def digest(self) -> str:
        """Deterministic fingerprint (wall-clock excluded)."""
        payload = self.as_dict()
        payload.pop("wall_seconds", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def save(self, path: str) -> None:
        payload = self.as_dict()
        payload["digest"] = self.digest()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def _plan_run(
    config: CampaignConfig, run_index: int, seams: Tuple[str, ...]
) -> Tuple[Optional[str], int, bool]:
    """Decide (target, nth, worker_kill) for one run — pure function of
    the campaign seed and index.

    The first ``len(seams)`` runs target each registered seam in order
    (guaranteed coverage); the last ``worker_kill_runs`` SIGKILL pool
    workers (dedup stacks only — the pool lives in the dedup tier);
    the rest draw from the seeded mix, with the kill *probability*
    following the campaign's virtual fault-rate schedule so the
    adaptive loop sees a realistic stream.
    """
    rng = random.Random(f"{config.seed}:target:{run_index}")
    worker_tail = (
        config.worker_kill_runs if config.backend in ("dedup", "tiered") else 0
    )
    if run_index < len(seams):
        return seams[run_index], 1, False
    if run_index >= config.runs - worker_tail:
        return None, 0, True
    p_kill = 1.0 - float(np.exp(-config.rate_at(run_index)))
    if rng.random() >= p_kill:
        return None, 0, False
    roll = rng.random()
    if roll < 0.7:
        return rng.choice(seams), rng.randint(1, 3), False
    return ANY, rng.randint(1, 30), False


def run_campaign(
    config: CampaignConfig,
    root: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    controller: Optional[OnlineAdaptiveController] = None,
    run_index: Optional[int] = None,
    progress=None,
) -> CampaignResult:
    """Run a full campaign (or a single ``run_index`` repro).

    Raises :class:`ChaosFailure` — seeds and repro command included —
    the moment a run cannot be verified; a completed return means every
    run ended reopen-able, fsck-clean and byte-exact.
    """
    seams = seams_for(config.backend)
    registry = registry if registry is not None else get_registry()
    c_runs = registry.counter(
        "moc_chaos_runs_total", "Chaos runs executed, by status", labelnames=("status",)
    )
    if controller is None and config.adaptive:
        controller = OnlineAdaptiveController(
            o_save=config.o_save,
            estimator=OnlineFaultRateEstimator(window=30.0, min_events=3),
            min_interval=1.0,
            max_interval=200.0,
        )
    result = CampaignResult(config=config)
    indices = range(config.runs) if run_index is None else [run_index]
    started = time.perf_counter()
    owned_root = root is None
    if owned_root:
        root = tempfile.mkdtemp(prefix="chaos-campaign-")
    try:
        virtual_now = 0.0
        local_keep = 2
        for index in indices:
            virtual_now += 1.0  # one run = one unit of virtual fleet time
            target, nth, worker_kill = _plan_run(config, index, seams)
            run_root = os.path.join(root, f"run-{index:05d}")
            run = ChaosRun(
                backend=config.backend,
                campaign_seed=config.seed,
                runs=config.runs,
                run_index=index,
                root=run_root,
                ops=config.ops_per_run,
                max_kills=config.max_kills,
                target=target,
                nth=nth,
                worker_kill=worker_kill,
                remote_fault_rate=config.remote_fault_rate,
                local_keep_stamps=local_keep,
                registry=registry,
            )
            try:
                run_result = run.execute()
            except ChaosFailure:
                c_runs.labels(status="failed").inc()
                result.runs_failed += 1
                raise
            finally:
                shutil.rmtree(run_root, ignore_errors=True)
            c_runs.labels(status="ok").inc()
            result.runs_ok += 1
            result.kills_total += len(run_result.kills)
            for _target, seam in run_result.kills:
                result.seam_kills[seam] += 1
            for action in run_result.recovery_actions:
                result.recovery_actions[action] += 1
            result.escalations += run_result.escalations
            result.circular_detections += int(run_result.circular)
            result.worker_kills += int(run_result.worker_kill)
            if target is not None and not run_result.kills:
                result.no_fire_runs += 1
            result.run_results.append(run_result.as_dict())
            if run_result.kills:
                result.fault_times.append(virtual_now)
            # Close the loop: feed the fault stream to the controller
            # and let its decision retune the *next* runs.
            if controller is not None:
                if run_result.kills:
                    controller.observe_fault(virtual_now)
                decision = controller.decide(virtual_now)
                result.decisions.append(decision.as_dict())
                local_keep = (
                    max(1, min(4, decision.k_persist))
                    if decision.persist_tier == "two-level"
                    else 1
                )
            if progress is not None:
                progress(index, run_result)
    finally:
        if owned_root:
            shutil.rmtree(root, ignore_errors=True)
    result.wall_seconds = time.perf_counter() - started
    return result
