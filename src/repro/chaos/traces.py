"""Fault traces: record, replay, synthesize, and scale fault streams.

A :class:`FaultTrace` is the exchange format between the chaos layers:
campaigns (:mod:`repro.chaos.campaign`) record the faults they injected
as a trace; :func:`repro.distsim.faultsim.simulate_run_with_faults`
replays a trace deterministically through the long-run simulator;
:meth:`repro.train.faults.FaultSchedule.from_trace` turns one into a
trainer fault schedule.  :func:`synthetic_trace` generates the three
canonical cluster failure shapes (independent crashes, bursty spot
preemptions, stragglers), and :meth:`FaultTrace.scaled` superposes
shifted copies of a recorded trace to model thousand-node fleets from a
small-fleet recording.

Serialized form is JSONL: a header record (``{"kind": "header", ...}``)
with the horizon and node count, then one record per fault.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import IO, Iterable, List, Optional, Sequence, Union

#: Fault-record kinds with distinct cluster semantics: ``crash`` and
#: ``preemption`` kill the node (the trainer must recover); ``straggler``
#: slows it for ``duration`` without killing it.
KINDS = ("crash", "preemption", "straggler")


@dataclass(frozen=True)
class FaultRecord:
    """One fault: when, which node, what shape."""

    time: float
    node: int = 0
    kind: str = "crash"
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (want one of {KINDS})")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "node": self.node,
            "kind": self.kind,
            "duration": self.duration,
        }


@dataclass
class FaultTrace:
    """An ordered fault stream over ``nodes`` nodes and ``horizon`` time."""

    records: List[FaultRecord] = field(default_factory=list)
    horizon: float = 0.0
    nodes: int = 1

    def __post_init__(self) -> None:
        self.records = sorted(self.records, key=lambda r: (r.time, r.node, r.kind))
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        last = max((r.time for r in self.records), default=0.0)
        if self.horizon <= 0:
            self.horizon = max(last, 1.0)
        elif last > self.horizon:
            raise ValueError(
                f"record at t={last} lies beyond the horizon {self.horizon}"
            )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def rate(self) -> float:
        """Whole-fleet fault rate (events per time unit)."""
        return len(self.records) / self.horizon

    def fault_times(self, kinds: Optional[Sequence[str]] = None) -> List[float]:
        """Sorted times of the records matching ``kinds`` (default: the
        node-killing kinds — exactly what the run simulators consume)."""
        wanted = frozenset(kinds) if kinds is not None else frozenset(
            {"crash", "preemption"}
        )
        return [r.time for r in self.records if r.kind in wanted]

    # -- serialization ---------------------------------------------------
    def to_jsonl(self, path_or_file: Union[str, IO[str]]) -> None:
        if isinstance(path_or_file, str):
            with open(path_or_file, "w", encoding="utf-8") as handle:
                self.to_jsonl(handle)
            return
        header = {"kind": "header", "horizon": self.horizon, "nodes": self.nodes}
        path_or_file.write(json.dumps(header) + "\n")
        for record in self.records:
            path_or_file.write(json.dumps(record.as_dict()) + "\n")

    @classmethod
    def from_jsonl(cls, path_or_file: Union[str, IO[str]]) -> "FaultTrace":
        if isinstance(path_or_file, str):
            with open(path_or_file, "r", encoding="utf-8") as handle:
                return cls.from_jsonl(handle)
        horizon = 0.0
        nodes = 1
        records: List[FaultRecord] = []
        for line in path_or_file:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("kind") == "header":
                horizon = float(obj.get("horizon", 0.0))
                nodes = int(obj.get("nodes", 1))
                continue
            records.append(
                FaultRecord(
                    time=float(obj["time"]),
                    node=int(obj.get("node", 0)),
                    kind=str(obj.get("kind", "crash")),
                    duration=float(obj.get("duration", 0.0)),
                )
            )
        return cls(records=records, horizon=horizon, nodes=nodes)

    # -- scaling ---------------------------------------------------------
    def scaled(self, target_nodes: int, seed: int = 0) -> "FaultTrace":
        """Scale a small-fleet recording to ``target_nodes`` nodes.

        Under the usual independence assumption the fleet fault process
        is a superposition of per-node processes, so scaling N nodes to
        M superposes ``M // N`` time-shifted copies of the trace (each
        copy's events wrap modulo the horizon, landing on a disjoint
        node range) plus one copy thinned to the fractional remainder.
        The result keeps the recording's burst structure — which a
        plain rate multiplication would erase — while multiplying the
        rate by ``M / N``.
        """
        if target_nodes < self.nodes:
            raise ValueError("scaled() only scales up; thin the trace instead")
        rng = random.Random(seed)
        copies, remainder = divmod(target_nodes, self.nodes)
        fraction = remainder / self.nodes
        out: List[FaultRecord] = []
        for copy in range(copies + (1 if remainder else 0)):
            shift = 0.0 if copy == 0 else rng.uniform(0.0, self.horizon)
            thin = fraction if copy == copies else 1.0
            for record in self.records:
                if thin < 1.0 and rng.random() >= thin:
                    continue
                out.append(
                    FaultRecord(
                        time=(record.time + shift) % self.horizon,
                        node=record.node + copy * self.nodes,
                        kind=record.kind,
                        duration=record.duration,
                    )
                )
        return FaultTrace(records=out, horizon=self.horizon, nodes=target_nodes)


def synthetic_trace(
    kind: str,
    nodes: int,
    horizon: float,
    rate_per_node: float,
    seed: int = 0,
    burst_size: int = 8,
    straggler_duration: float = 5.0,
) -> FaultTrace:
    """Generate one of the canonical cluster failure shapes.

    ``crash``
        Independent per-node Poisson crashes — the assumption behind
        Young-Daly and the paper's overhead model.
    ``preemption``
        Bursty spot-instance reclaims: burst *onsets* arrive as a
        Poisson process at ``rate_per_node * nodes / burst_size`` and
        each onset preempts ``burst_size`` random nodes within a short
        window — same long-run rate as ``crash`` but heavily clustered,
        which is what stresses a windowed rate estimator.
    ``straggler``
        Poisson per-node slowdowns of ``straggler_duration`` each; these
        do not kill nodes and are filtered out by the run simulators,
        but flow through schedules that opt in to them.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown trace kind {kind!r} (want one of {KINDS})")
    if nodes < 1 or horizon <= 0 or rate_per_node < 0:
        raise ValueError("need nodes >= 1, horizon > 0, rate_per_node >= 0")
    rng = random.Random(seed)
    records: List[FaultRecord] = []
    if kind == "preemption":
        burst_size = max(1, min(burst_size, nodes))
        onset_rate = rate_per_node * nodes / burst_size
        t = 0.0
        while onset_rate > 0:
            t += rng.expovariate(onset_rate)
            if t >= horizon:
                break
            victims = rng.sample(range(nodes), burst_size)
            for victim in victims:
                when = min(t + rng.uniform(0.0, 0.5), horizon)
                records.append(FaultRecord(time=when, node=victim, kind=kind))
    else:
        duration = straggler_duration if kind == "straggler" else 0.0
        for node in range(nodes):
            t = 0.0
            while rate_per_node > 0:
                t += rng.expovariate(rate_per_node)
                if t >= horizon:
                    break
                records.append(
                    FaultRecord(time=t, node=node, kind=kind, duration=duration)
                )
    return FaultTrace(records=records, horizon=horizon, nodes=nodes)


def trace_from_times(
    times: Iterable[float], horizon: float = 0.0, kind: str = "crash"
) -> FaultTrace:
    """Wrap a bare list of fault times (e.g. a campaign's virtual-clock
    fault stream) into a single-node trace."""
    records = [FaultRecord(time=float(t), node=0, kind=kind) for t in times]
    return FaultTrace(records=records, horizon=horizon, nodes=1)
