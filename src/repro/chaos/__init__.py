"""Chaos engineering for the checkpoint stack.

Two halves: :mod:`repro.chaos.campaign` runs seeded randomized
fault-injection campaigns against the live stores (the fleet-scale
counterpart of the per-seam crash batteries), and
:mod:`repro.chaos.traces` records/replays/synthesizes the fault streams
that connect campaigns to the :mod:`repro.distsim` simulators and the
trainer's fault schedules.
"""

from .campaign import (
    ANY,
    BACKENDS,
    CIRCULAR_THRESHOLD,
    CampaignConfig,
    CampaignResult,
    ChaosFailure,
    ChaosRun,
    DEDUP_SEAMS,
    RunResult,
    SeamInjector,
    TIERED_SEAMS,
    repro_command,
    run_campaign,
    run_seed_for,
    seams_for,
)
from .traces import (
    KINDS,
    FaultRecord,
    FaultTrace,
    synthetic_trace,
    trace_from_times,
)

__all__ = [
    "ANY",
    "BACKENDS",
    "CIRCULAR_THRESHOLD",
    "CampaignConfig",
    "CampaignResult",
    "ChaosFailure",
    "ChaosRun",
    "DEDUP_SEAMS",
    "FaultRecord",
    "FaultTrace",
    "KINDS",
    "RunResult",
    "SeamInjector",
    "TIERED_SEAMS",
    "repro_command",
    "run_campaign",
    "run_seed_for",
    "seams_for",
    "synthetic_trace",
    "trace_from_times",
]
