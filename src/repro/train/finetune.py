"""Fine-tuning harness for the Table 4 experiment.

Fine-tunes a pre-trained MoE LM on a shifted-domain corpus under four
regimes:

* ``BASE``     — no fine-tuning (the pre-trained model as-is);
* ``FT_WO_E``  — fine-tune with all expert parameters frozen;
* ``FT_FULL``  — fine-tune with full-state checkpointing and a midpoint
                 fault;
* ``FT_PEC``   — fine-tune with PEC (1/8 of experts per checkpoint) and
                 the same midpoint fault.

The paper's finding — PEC matches full-saving accuracy, and even frozen
experts lose little — rests on expert parameters tolerating missing
updates; the same comparison is reproduced here on the synthetic stack.
"""

from __future__ import annotations

import copy
import enum
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.config import MoCConfig, PECConfig, TwoLevelConfig
from ..core.manager import MoCCheckpointManager
from ..models.optim import Adam
from ..models.serial import classify_parameters
from .data import MarkovCorpus
from .faults import FaultSchedule
from .trainer import Trainer, TrainerConfig


class FinetuneVariant(str, enum.Enum):
    BASE = "Base"
    FT_WO_E = "FT-w.o.E"
    FT_FULL = "FT-Full"
    FT_PEC = "FT-PEC"


@dataclass
class FinetuneResult:
    variant: FinetuneVariant
    model: object
    history: Optional[object]


def clone_model_state(source_model, target_model) -> None:
    """Copy parameter values between identically-shaped models."""
    source = dict(source_model.named_parameters())
    for name, param in target_model.named_parameters():
        param.data = source[name].data.copy()


def run_finetune(
    pretrained_model,
    model_factory,
    corpus: MarkovCorpus,
    variant: FinetuneVariant,
    iterations: int = 60,
    batch_size: int = 4,
    lr: float = 5e-4,
    checkpoint_interval: int = 10,
    k_pec_fraction: int = 8,
) -> FinetuneResult:
    """Fine-tune a copy of ``pretrained_model`` under ``variant``.

    ``model_factory`` builds a fresh model of the same architecture (the
    copy target).  ``k_pec_fraction`` = 8 saves 1/8 of the experts per
    checkpoint, matching the paper's OLMoE setting.
    """
    if variant is FinetuneVariant.BASE:
        return FinetuneResult(variant=variant, model=pretrained_model, history=None)

    model = model_factory()
    clone_model_state(pretrained_model, model)
    config = TrainerConfig(total_iterations=iterations, batch_size=batch_size)

    if variant is FinetuneVariant.FT_WO_E:
        classes = classify_parameters(model)
        trainable = [
            (name, param)
            for name, param in model.named_parameters()
            if not classes[name].is_expert
        ]
        optimizer = Adam(trainable, lr=lr)
        trainer = Trainer(model, optimizer, corpus, config)
        history = trainer.run()
        return FinetuneResult(variant=variant, model=model, history=history)

    optimizer = Adam(model.named_parameters(), lr=lr)
    num_experts = model.moe_layers()[0].num_experts
    if variant is FinetuneVariant.FT_FULL:
        moc = MoCConfig.baseline(num_experts, checkpoint_interval=checkpoint_interval)
    elif variant is FinetuneVariant.FT_PEC:
        k = max(1, num_experts // k_pec_fraction)
        moc = MoCConfig(
            pec=PECConfig(k_snapshot=k, k_persist=k),
            two_level=TwoLevelConfig(checkpoint_interval=checkpoint_interval),
        )
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unhandled variant {variant!r}")

    with tempfile.TemporaryDirectory() as disk_root:
        manager = MoCCheckpointManager(model, optimizer, moc, disk_root=disk_root)
        trainer = Trainer(
            model,
            optimizer,
            corpus,
            config,
            manager=manager,
            fault_schedule=FaultSchedule.midpoint(iterations),
        )
        history = trainer.run()
    return FinetuneResult(variant=variant, model=model, history=history)
