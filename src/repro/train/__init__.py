"""Training substrate: data, trainer, faults, evaluation, fine-tuning."""

from .data import (
    MarkovCorpus,
    PROBE_TASK_NAMES,
    ProbeTask,
    VisionDataset,
    make_finetune_corpus,
    make_probe_suite,
    make_vision_dataset,
)
from .evaluate import (
    ProbeSuiteResult,
    continuation_log_likelihood,
    evaluate_probe_suite,
    evaluate_probe_task,
    lm_validation_loss,
)
from .faults import FaultEvent, FaultSchedule
from .finetune import FinetuneResult, FinetuneVariant, clone_model_state, run_finetune
from .resume import ResumedRun, continue_run, latest_persisted_iteration, resume_training
from .trainer import TrainHistory, Trainer, TrainerConfig

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FinetuneResult",
    "FinetuneVariant",
    "MarkovCorpus",
    "PROBE_TASK_NAMES",
    "ProbeSuiteResult",
    "ProbeTask",
    "ResumedRun",
    "TrainHistory",
    "Trainer",
    "TrainerConfig",
    "VisionDataset",
    "clone_model_state",
    "continuation_log_likelihood",
    "continue_run",
    "evaluate_probe_suite",
    "evaluate_probe_task",
    "latest_persisted_iteration",
    "lm_validation_loss",
    "make_finetune_corpus",
    "make_probe_suite",
    "make_vision_dataset",
    "resume_training",
]
