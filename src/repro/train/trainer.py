"""Training loop with checkpoint hooks and fault injection.

The :class:`Trainer` drives any model exposing ``loss`` /
``routing_stats`` over a deterministic iteration-addressed data source.
After each completed iteration it (1) feeds routing counts to the
checkpoint manager's PLT tracker, (2) consults the fault schedule —
a fault rolls state and the iteration counter back through the manager's
recovery path — and (3) otherwise lets the manager checkpoint.

Because batches are a pure function of the iteration number, a recovered
run replays the exact token stream, so differences between checkpointing
strategies are attributable to the recovered state alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.manager import MoCCheckpointManager, RecoveryResult
from .faults import FaultSchedule


@dataclass
class TrainerConfig:
    total_iterations: int = 100
    batch_size: int = 4
    eval_every: int = 0  # 0 disables periodic eval
    max_replayed_iterations: int = 100_000  # safety valve

    def __post_init__(self) -> None:
        if self.total_iterations < 1:
            raise ValueError("total_iterations must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass
class TrainHistory:
    """Everything a run produced, keyed by *progress* iteration."""

    train_losses: Dict[int, float] = field(default_factory=dict)
    val_losses: Dict[int, float] = field(default_factory=dict)
    fault_iterations: List[int] = field(default_factory=list)
    recoveries: List[RecoveryResult] = field(default_factory=list)
    executed_iterations: int = 0
    final_val_loss: Optional[float] = None
    # Eq. 7's denominator spans the whole run, so the final PLT is read
    # from the tracker after training completes (a recovery-time reading
    # would overstate it).
    final_plt: float = 0.0


class Trainer:
    """Orchestrates train steps, checkpointing and fault recovery."""

    def __init__(
        self,
        model,
        optimizer,
        data_source,
        config: TrainerConfig,
        manager: Optional[MoCCheckpointManager] = None,
        fault_schedule: Optional[FaultSchedule] = None,
        val_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.data = data_source
        self.config = config
        self.manager = manager
        self.faults = fault_schedule if fault_schedule is not None else FaultSchedule.none()
        self.val_fn = val_fn

    # ------------------------------------------------------------------
    def train_step(self, iteration: int) -> float:
        inputs, targets = self.data.batch(iteration, self.config.batch_size)
        if hasattr(self.model, "set_routing_step"):
            self.model.set_routing_step(iteration)
        self.optimizer.zero_grad()
        loss = self.model.loss(inputs, targets)
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def run(self) -> TrainHistory:
        history = TrainHistory()
        if self.manager is not None:
            self.manager.save_initial(0)
        iteration = 1
        executed = 0
        while iteration <= self.config.total_iterations:
            executed += 1
            if executed > self.config.max_replayed_iterations:
                raise RuntimeError("exceeded max_replayed_iterations — runaway replay loop")
            loss_value = self.train_step(iteration)
            history.train_losses[iteration] = loss_value
            if self.manager is not None:
                self.manager.note_model_routing()

            fault = self.faults.consume(iteration)
            if fault is not None:
                history.fault_iterations.append(iteration)
                if self.manager is None:
                    raise RuntimeError(
                        f"fault at iteration {iteration} but no checkpoint manager"
                    )
                result = self.manager.recover(failed_nodes=list(fault.failed_nodes))
                history.recoveries.append(result)
                iteration = result.resume_iteration + 1
                continue

            if self.manager is not None:
                self.manager.maybe_checkpoint(iteration)
            if (
                self.val_fn is not None
                and self.config.eval_every > 0
                and iteration % self.config.eval_every == 0
            ):
                history.val_losses[iteration] = self.val_fn()
            iteration += 1

        history.executed_iterations = executed
        if self.manager is not None:
            history.final_plt = self.manager.plt_tracker.plt()
        if self.val_fn is not None:
            history.final_val_loss = self.val_fn()
        return history
