"""Fault schedules and injection for training runs.

A :class:`FaultSchedule` lists the iterations at which node failures
strike and which nodes fail.  The trainer consults it after each
completed iteration; on a hit it invokes the checkpoint manager's
recovery path and rewinds to the resumed iteration, replaying the same
deterministic data stream the original run saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class FaultEvent:
    """One fault: which iteration it interrupts and which nodes die."""

    iteration: int
    failed_nodes: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.iteration < 1:
            raise ValueError("faults can only strike at iteration >= 1")


@dataclass
class FaultSchedule:
    """An ordered set of fault events over a training run."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        iterations = [event.iteration for event in self.events]
        if len(set(iterations)) != len(iterations):
            raise ValueError("duplicate fault iterations")
        self.events = sorted(self.events, key=lambda event: event.iteration)
        self._by_iteration: Dict[int, FaultEvent] = {
            event.iteration: event for event in self.events
        }

    def fault_at(self, iteration: int) -> FaultEvent | None:
        return self._by_iteration.get(iteration)

    def consume(self, iteration: int) -> FaultEvent | None:
        """Pop the fault at ``iteration`` so a replayed iteration (after
        rollback) does not re-trigger it."""
        event = self._by_iteration.pop(iteration, None)
        if event is not None:
            self.events.remove(event)
        return event

    @property
    def num_faults(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Constructors matching the paper's experiment setups
    # ------------------------------------------------------------------
    @classmethod
    def midpoint(cls, total_iterations: int, failed_nodes: Sequence[int] = (0,)) -> "FaultSchedule":
        """One fault at the midpoint (Figure 5 / Table 4 setup)."""
        return cls([FaultEvent(max(1, total_iterations // 2), tuple(failed_nodes))])

    @classmethod
    def periodic(
        cls,
        every: int,
        total_iterations: int,
        failed_nodes: Sequence[int] = (0,),
        start: int | None = None,
    ) -> "FaultSchedule":
        """Faults every ``every`` iterations (Figure 14(a) setup)."""
        if every < 1:
            raise ValueError("fault period must be >= 1")
        start = every if start is None else start
        events = [
            FaultEvent(iteration, tuple(failed_nodes))
            for iteration in range(start, total_iterations, every)
        ]
        return cls(events)

    @classmethod
    def none(cls) -> "FaultSchedule":
        return cls([])

    @classmethod
    def from_trace(
        cls,
        trace,
        total_iterations: int,
        iteration_seconds: float = 1.0,
        kinds: Sequence[str] | None = None,
    ) -> "FaultSchedule":
        """Trace-driven mode: build a schedule from a recorded fault trace.

        ``trace`` is duck-typed (an iterable of records with ``time``,
        ``node`` and ``kind`` attributes — e.g.
        :class:`repro.chaos.traces.FaultTrace`).  Record times are
        mapped onto iterations via ``iteration_seconds``; a fault at
        time ``t`` strikes the iteration in flight at ``t`` (1-based,
        clamped to ``[1, total_iterations]``).  Records whose ``kind``
        is not in ``kinds`` (default: crashes and preemptions — the
        kinds that kill nodes) are skipped, and multiple records landing
        on the same iteration merge their failed nodes into one event.
        """
        if total_iterations < 1:
            raise ValueError("total_iterations must be >= 1")
        if iteration_seconds <= 0:
            raise ValueError("iteration_seconds must be positive")
        wanted = frozenset(kinds) if kinds is not None else frozenset(
            {"crash", "preemption"}
        )
        records = getattr(trace, "records", trace)
        nodes_by_iteration: Dict[int, set] = {}
        for record in records:
            if record.kind not in wanted:
                continue
            iteration = int(record.time / iteration_seconds) + 1
            if iteration > total_iterations:
                continue
            nodes_by_iteration.setdefault(iteration, set()).add(int(record.node))
        events = [
            FaultEvent(iteration, tuple(sorted(nodes)))
            for iteration, nodes in sorted(nodes_by_iteration.items())
        ]
        return cls(events)
