"""Fault schedules and injection for training runs.

A :class:`FaultSchedule` lists the iterations at which node failures
strike and which nodes fail.  The trainer consults it after each
completed iteration; on a hit it invokes the checkpoint manager's
recovery path and rewinds to the resumed iteration, replaying the same
deterministic data stream the original run saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class FaultEvent:
    """One fault: which iteration it interrupts and which nodes die."""

    iteration: int
    failed_nodes: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.iteration < 1:
            raise ValueError("faults can only strike at iteration >= 1")


@dataclass
class FaultSchedule:
    """An ordered set of fault events over a training run."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        iterations = [event.iteration for event in self.events]
        if len(set(iterations)) != len(iterations):
            raise ValueError("duplicate fault iterations")
        self.events = sorted(self.events, key=lambda event: event.iteration)
        self._by_iteration: Dict[int, FaultEvent] = {
            event.iteration: event for event in self.events
        }

    def fault_at(self, iteration: int) -> FaultEvent | None:
        return self._by_iteration.get(iteration)

    def consume(self, iteration: int) -> FaultEvent | None:
        """Pop the fault at ``iteration`` so a replayed iteration (after
        rollback) does not re-trigger it."""
        event = self._by_iteration.pop(iteration, None)
        if event is not None:
            self.events.remove(event)
        return event

    @property
    def num_faults(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Constructors matching the paper's experiment setups
    # ------------------------------------------------------------------
    @classmethod
    def midpoint(cls, total_iterations: int, failed_nodes: Sequence[int] = (0,)) -> "FaultSchedule":
        """One fault at the midpoint (Figure 5 / Table 4 setup)."""
        return cls([FaultEvent(max(1, total_iterations // 2), tuple(failed_nodes))])

    @classmethod
    def periodic(
        cls,
        every: int,
        total_iterations: int,
        failed_nodes: Sequence[int] = (0,),
        start: int | None = None,
    ) -> "FaultSchedule":
        """Faults every ``every`` iterations (Figure 14(a) setup)."""
        if every < 1:
            raise ValueError("fault period must be >= 1")
        start = every if start is None else start
        events = [
            FaultEvent(iteration, tuple(failed_nodes))
            for iteration in range(start, total_iterations, every)
        ]
        return cls(events)

    @classmethod
    def none(cls) -> "FaultSchedule":
        return cls([])
