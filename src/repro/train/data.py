"""Synthetic workloads standing in for the paper's datasets.

The paper pre-trains on Wikitext / SlimPajama and evaluates on eight
multiple-choice downstream suites.  Offline, we substitute:

* :class:`MarkovCorpus` — token streams from a mixture of random Markov
  chains ("domains").  Domain structure gives the gating network real
  signal, producing the skewed expert specialisation that makes PEC's
  update-loss question non-trivial.
* :func:`make_probe_suite` — multiple-choice downstream tasks built from
  held-out chain continuations: the model must assign the highest
  likelihood to the true continuation among distractors, exactly the
  mechanics of HellaSwag/PIQA-style evaluation.
* :func:`make_vision_dataset` — Gaussian-blob class clusters for the
  SwinV2-MoE stand-in classifier.

Everything is deterministic given a seed, and batches are addressed by
iteration number so a trainer that rolls back after a fault replays the
identical data order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def _random_transition_matrix(
    vocab_size: int, rng: np.random.Generator, concentration: float = 0.1
) -> np.ndarray:
    """A sparse-ish row-stochastic matrix (low concentration => peaky rows)."""
    matrix = rng.dirichlet(np.full(vocab_size, concentration), size=vocab_size)
    return matrix


@dataclass
class MarkovCorpus:
    """A mixture of Markov-chain domains emitting token sequences.

    Each *domain* has its own transition matrix over a shared vocabulary;
    sequences are drawn from a single domain (chosen per sequence), which
    is what induces expert specialisation in the MoE router.
    """

    vocab_size: int = 64
    num_domains: int = 4
    seq_len: int = 32
    seed: int = 0
    concentration: float = 0.1

    def __post_init__(self) -> None:
        if self.vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        rng = np.random.default_rng(self.seed)
        self.transitions = np.stack(
            [
                _random_transition_matrix(self.vocab_size, rng, self.concentration)
                for _ in range(self.num_domains)
            ]
        )
        self.initial = rng.dirichlet(np.ones(self.vocab_size), size=self.num_domains)

    # ------------------------------------------------------------------
    def sample_sequence(
        self, rng: np.random.Generator, domain: Optional[int] = None, length: Optional[int] = None
    ) -> Tuple[np.ndarray, int]:
        """Draw one sequence; returns (tokens, domain)."""
        length = self.seq_len if length is None else length
        if domain is None:
            domain = int(rng.integers(self.num_domains))
        tokens = np.empty(length, dtype=np.int64)
        tokens[0] = rng.choice(self.vocab_size, p=self.initial[domain])
        for position in range(1, length):
            tokens[position] = rng.choice(
                self.vocab_size, p=self.transitions[domain, tokens[position - 1]]
            )
        return tokens, domain

    def batch(self, iteration: int, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Deterministic (tokens, targets) batch for an iteration number.

        Targets are next-token shifted; the final target of each row wraps
        to the first token (negligible at these lengths, keeps shapes
        aligned).
        """
        rng = np.random.default_rng((self.seed, 0xBA7C, iteration))
        tokens = np.stack(
            [self.sample_sequence(rng)[0] for _ in range(batch_size)]
        )
        targets = np.roll(tokens, -1, axis=1)
        return tokens, targets

    def validation_set(
        self, num_batches: int, batch_size: int, tag: int = 0xE7A1
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """A fixed held-out set (distinct stream from training batches)."""
        batches = []
        for index in range(num_batches):
            rng = np.random.default_rng((self.seed, tag, index))
            tokens = np.stack(
                [self.sample_sequence(rng)[0] for _ in range(batch_size)]
            )
            targets = np.roll(tokens, -1, axis=1)
            batches.append((tokens, targets))
        return batches


@dataclass
class ProbeTask:
    """One multiple-choice downstream task.

    ``prompts`` (N, prompt_len) token prefixes; ``choices`` (N, C,
    cont_len) candidate continuations; ``answers`` (N,) index of the true
    continuation.
    """

    name: str
    prompts: np.ndarray
    choices: np.ndarray
    answers: np.ndarray

    def __post_init__(self) -> None:
        if len(self.prompts) != len(self.choices) or len(self.prompts) != len(self.answers):
            raise ValueError(f"task {self.name}: inconsistent example counts")


# Names mirror Table 3's suites so bench output reads like the paper.
PROBE_TASK_NAMES = (
    "HellaSwag",
    "PIQA",
    "WinoGrande",
    "BoolQ",
    "ARC-E",
    "OBQA",
    "RACE",
    "MathQA",
)


def make_probe_suite(
    corpus: MarkovCorpus,
    num_tasks: int = 8,
    examples_per_task: int = 24,
    num_choices: int = 4,
    prompt_len: int = 12,
    cont_len: int = 6,
    seed: int = 1234,
) -> List[ProbeTask]:
    """Build multiple-choice tasks from held-out chain continuations.

    Each task draws prompts from one (rotating) domain; the correct choice
    continues the prompt under the true domain's chain while distractors
    are re-sampled with shuffled transition rows — likelihood under a
    well-trained LM separates them.
    """
    tasks: List[ProbeTask] = []
    for task_index in range(num_tasks):
        rng = np.random.default_rng((seed, task_index))
        domain = task_index % corpus.num_domains
        prompts = np.empty((examples_per_task, prompt_len), dtype=np.int64)
        choices = np.empty((examples_per_task, num_choices, cont_len), dtype=np.int64)
        answers = np.empty(examples_per_task, dtype=np.int64)
        # Distractor chains: permuted rows of the domain's matrix.
        distractor_transitions = corpus.transitions[domain][
            rng.permutation(corpus.vocab_size)
        ]
        for example in range(examples_per_task):
            full, _ = corpus.sample_sequence(
                rng, domain=domain, length=prompt_len + cont_len
            )
            prompts[example] = full[:prompt_len]
            answer = int(rng.integers(num_choices))
            answers[example] = answer
            for choice in range(num_choices):
                if choice == answer:
                    choices[example, choice] = full[prompt_len:]
                else:
                    tokens = np.empty(cont_len, dtype=np.int64)
                    prev = full[prompt_len - 1]
                    for position in range(cont_len):
                        tokens[position] = rng.choice(
                            corpus.vocab_size, p=distractor_transitions[prev]
                        )
                        prev = tokens[position]
                    choices[example, choice] = tokens
        name = PROBE_TASK_NAMES[task_index % len(PROBE_TASK_NAMES)]
        tasks.append(ProbeTask(name=name, prompts=prompts, choices=choices, answers=answers))
    return tasks


@dataclass
class VisionDataset:
    """Feature-vector classification data (SwinV2-MoE stand-in)."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.train_y.max()) + 1

    def batch(self, iteration: int, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng((0x51CA, iteration))
        idx = rng.integers(0, len(self.train_x), size=batch_size)
        return self.train_x[idx], self.train_y[idx]


def make_vision_dataset(
    num_classes: int = 4,
    input_dim: int = 16,
    train_per_class: int = 64,
    test_per_class: int = 32,
    cluster_std: float = 0.6,
    subclusters: int = 3,
    seed: int = 7,
) -> VisionDataset:
    """Gaussian blob classes with sub-cluster structure.

    Sub-clusters within each class give the MoE router meaningful
    structure to partition (mirroring how vision MoE experts specialise
    on visual modes).
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 2.0, size=(num_classes, subclusters, input_dim))

    def draw(count: int) -> Tuple[np.ndarray, np.ndarray]:
        xs, ys = [], []
        for cls in range(num_classes):
            for _ in range(count):
                sub = int(rng.integers(subclusters))
                xs.append(centers[cls, sub] + rng.normal(0.0, cluster_std, size=input_dim))
                ys.append(cls)
        order = rng.permutation(len(xs))
        return np.asarray(xs)[order], np.asarray(ys, dtype=np.int64)[order]

    train_x, train_y = draw(train_per_class)
    test_x, test_y = draw(test_per_class)
    return VisionDataset(train_x, train_y, test_x, test_y)


def make_finetune_corpus(base: MarkovCorpus, shift_seed: int = 99) -> MarkovCorpus:
    """A 'downstream' corpus: same vocabulary, new domain structure.

    Used by the Table 4 fine-tuning experiment — analogous to Alpaca
    relative to the pre-training distribution.
    """
    return MarkovCorpus(
        vocab_size=base.vocab_size,
        num_domains=base.num_domains,
        seq_len=base.seq_len,
        seed=base.seed + shift_seed,
        concentration=base.concentration * 0.5,
    )
