"""Cold-restart orchestration: resume training from a persisted store.

A node fault handled by :meth:`MoCCheckpointManager.recover` keeps the
process alive; a *job* failure (or preemption) loses everything but the
persist tier.  This module rebuilds the full training stack from a disk
store — fresh model, fresh optimizer, manager, trainer — restores the
mixed-version PEC state, and continues the run to completion, replaying
the deterministic data stream from the resume iteration.

This is the paper's "restart" path (the O_restart of Eq. 3) made
concrete, and is what `examples/quickstart.py`-style jobs would wrap in
a supervisor loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..ckpt.backend import make_backend
from ..ckpt.manifest import meta_entry_key
from ..core.config import MoCConfig
from ..core.manager import MoCCheckpointManager, RecoveryResult
from ..core.sharding import ShardTopology
from ..models.optim import Adam
from .faults import FaultSchedule
from .trainer import TrainHistory, Trainer, TrainerConfig


@dataclass
class ResumedRun:
    """Everything reconstructed by :func:`resume_training`."""

    trainer: Trainer
    manager: MoCCheckpointManager
    model: object
    optimizer: Adam
    resume_iteration: int
    #: Full recovery outcome, including the reshard plan and parallel
    #: restore stats when the resume changed topology.
    recovery: Optional[RecoveryResult] = None


def latest_persisted_iteration(disk_root: str, backend: str = "disk") -> int:
    """The iteration of the newest durable checkpoint, or -1 if none."""
    if backend == "memory":
        # A fresh InMemoryKVStore is always empty: nothing in-process
        # survives the job failure a resume recovers from.
        raise ValueError("the 'memory' backend is not resumable across processes")
    store = make_backend(backend, disk_root)
    key = meta_entry_key("iteration")
    if not store.has(key):
        return -1
    import numpy as np

    return int(np.asarray(store.get(key)["iteration"]).reshape(-1)[0])


def resume_training(
    model_factory: Callable[[], object],
    optimizer_factory: Callable[[object], Adam],
    corpus,
    moc_config: MoCConfig,
    trainer_config: TrainerConfig,
    disk_root: str,
    backend: str = "disk",
    async_writes: bool = False,
    fault_schedule: Optional[FaultSchedule] = None,
    val_fn_factory: Optional[Callable[[object], Callable[[], float]]] = None,
    target_topology: Optional[ShardTopology] = None,
    restore_workers: int = 1,
) -> ResumedRun:
    """Rebuild a training stack from a persisted store.

    ``model_factory`` must construct the same architecture the store was
    written from (entry keys are parameter names); ``optimizer_factory``
    receives the model and returns its Adam.  The returned trainer is
    positioned to continue from the persisted iteration — call
    :func:`continue_run` (or ``trainer.run`` manually after adjusting
    iteration bookkeeping) to finish the job.

    ``target_topology`` resumes the job on a different DP+EP layout than
    it was saved under (elastic reshard-on-resume): the restored state
    is identical, expert placement and future checkpoints follow the new
    layout, and ``restore_workers`` readers drain the persist tier in
    parallel.
    """
    resume_iteration = latest_persisted_iteration(disk_root, backend=backend)
    if resume_iteration < 0:
        raise FileNotFoundError(
            f"no persisted checkpoint under {disk_root!r} — cannot resume"
        )
    model = model_factory()
    optimizer = optimizer_factory(model)
    manager = MoCCheckpointManager(
        model, optimizer, moc_config, disk_root=disk_root,
        backend=backend, async_writes=async_writes,
        topology=target_topology,
    )
    # A cold restart has no surviving CPU memory anywhere: every node of
    # the placement is "failed" from the snapshot tier's perspective.
    result = manager.restore(topology=target_topology, workers=restore_workers)
    trainer = Trainer(
        model,
        optimizer,
        corpus,
        trainer_config,
        manager=manager,
        fault_schedule=fault_schedule,
        val_fn=val_fn_factory(model) if val_fn_factory is not None else None,
    )
    return ResumedRun(
        trainer=trainer,
        manager=manager,
        model=model,
        optimizer=optimizer,
        resume_iteration=result.resume_iteration,
        recovery=result,
    )


def continue_run(resumed: ResumedRun) -> TrainHistory:
    """Run the remaining iterations of a resumed job.

    The trainer's loop normally begins at iteration 1 and writes an
    initial full checkpoint; for a resumed job we skip both and continue
    from ``resume_iteration + 1``, replaying the deterministic stream.
    """
    trainer = resumed.trainer
    config = trainer.config
    history = TrainHistory()
    iteration = resumed.resume_iteration + 1
    executed = 0
    while iteration <= config.total_iterations:
        executed += 1
        if executed > config.max_replayed_iterations:
            raise RuntimeError("exceeded max_replayed_iterations")
        loss_value = trainer.train_step(iteration)
        history.train_losses[iteration] = loss_value
        trainer.manager.note_model_routing()

        fault = trainer.faults.consume(iteration)
        if fault is not None:
            history.fault_iterations.append(iteration)
            result = trainer.manager.recover(failed_nodes=list(fault.failed_nodes))
            history.recoveries.append(result)
            iteration = result.resume_iteration + 1
            continue

        trainer.manager.maybe_checkpoint(iteration)
        if (
            trainer.val_fn is not None
            and config.eval_every > 0
            and iteration % config.eval_every == 0
        ):
            history.val_losses[iteration] = trainer.val_fn()
        iteration += 1

    history.executed_iterations = executed
    history.final_plt = trainer.manager.plt_tracker.plt()
    if trainer.val_fn is not None:
        history.final_val_loss = trainer.val_fn()
    return history
