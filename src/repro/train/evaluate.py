"""Evaluation harnesses: validation loss and multiple-choice probes.

Downstream evaluation follows the mechanics of the paper's Table 3/4
suites: for each example, score every candidate continuation by its
log-likelihood under the LM and count the example correct when the true
continuation scores highest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..models import autograd as ag
from .data import ProbeTask


def lm_validation_loss(model, batches: Sequence[Tuple[np.ndarray, np.ndarray]]) -> float:
    """Mean next-token cross entropy over a fixed validation set.

    Pure CE (no load-balancing auxiliary term) in eval mode, matching how
    validation loss is reported in the paper's figures.
    """
    was_training = model.training
    model.eval()
    losses = []
    for tokens, targets in batches:
        logits = model(tokens)
        batch, seq, vocab = logits.shape
        flat = ag.reshape(logits, (batch * seq, vocab))
        loss = ag.cross_entropy_logits(flat, np.asarray(targets).reshape(-1))
        losses.append(loss.item())
    if was_training:
        model.train()
    return float(np.mean(losses))


def continuation_log_likelihood(
    model, prompt: np.ndarray, continuation: np.ndarray
) -> float:
    """Sum of log p(continuation tokens | preceding context)."""
    prompt = np.asarray(prompt)
    continuation = np.asarray(continuation)
    full = np.concatenate([prompt, continuation])
    logits = model(full[None, :]).data[0]  # (S, V)
    log_probs = logits - _logsumexp(logits)
    total = 0.0
    start = len(prompt) - 1  # logits at position t predict token t+1
    for offset, token in enumerate(continuation):
        total += float(log_probs[start + offset, token])
    return total


def _logsumexp(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return (
        np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        + logits.max(axis=-1, keepdims=True)
    )


def evaluate_probe_task(model, task: ProbeTask) -> float:
    """Accuracy on one multiple-choice task."""
    was_training = model.training
    model.eval()
    correct = 0
    for example in range(len(task.prompts)):
        scores = [
            continuation_log_likelihood(
                model, task.prompts[example], task.choices[example, choice]
            )
            for choice in range(task.choices.shape[1])
        ]
        if int(np.argmax(scores)) == int(task.answers[example]):
            correct += 1
    if was_training:
        model.train()
    return correct / len(task.prompts)


@dataclass
class ProbeSuiteResult:
    per_task: Dict[str, float]

    @property
    def average(self) -> float:
        return float(np.mean(list(self.per_task.values())))


def evaluate_probe_suite(model, tasks: Sequence[ProbeTask]) -> ProbeSuiteResult:
    """Accuracy on every task plus the Table-3-style average."""
    return ProbeSuiteResult(
        per_task={task.name: evaluate_probe_task(model, task) for task in tasks}
    )
