"""Analytic iteration-time model (the ASTRA-sim substitute).

Models one training iteration of ZeRO-2 DP + EP (optionally + TP) as:

* **F&B compute** — ``6 * active_params * tokens_per_gpu`` FLOPs at the
  GPU's effective throughput (Section 6.2.4's calibration);
* **All-to-all** — expert dispatch/combine payloads per MoE layer,
  forward and backward, over NVLink when EP stays inside a node and the
  inter-node fabric otherwise;
* **DP gradient reduction** — ring reduce-scatter of gradients (ZeRO-2)
  over the slower of the fabrics crossed by the ring;
* **Update** — the rank's ZeRO-2 optimizer shard streamed through HBM.

The absolute constants are calibrated, not measured; what the figures
need is the *relative* behaviour (which term dominates where, and how
snapshot time compares to F&B), which an alpha-beta model captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.sharding import ShardTopology
from .hardware import ClusterSpec
from .modelspec import B_OPT, B_W, MoEModelSpec


@dataclass(frozen=True)
class ParallelConfig:
    """Degrees of the hybrid parallel strategy for one deployment.

    ``d_pp`` adds pipeline parallelism: layers split into ``d_pp``
    stages, with the usual bubble overhead of ``(d_pp - 1) / m`` for
    ``m = num_microbatches`` (GPipe's schedule).
    """

    d_dp: int
    d_ep: int
    d_tp: int = 1
    d_pp: int = 1
    num_microbatches: int = 8
    tokens_per_gpu: int = 32 * 1024  # micro-batch tokens processed per GPU

    def __post_init__(self) -> None:
        if self.d_dp % self.d_ep != 0:
            raise ValueError("d_dp must be a multiple of d_ep")
        if min(self.d_dp, self.d_ep, self.d_tp, self.d_pp) < 1:
            raise ValueError("parallel degrees must be >= 1")
        if self.num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")

    @property
    def num_gpus(self) -> int:
        return self.d_dp * self.d_tp * self.d_pp

    @property
    def pipeline_bubble_fraction(self) -> float:
        """GPipe bubble: (stages - 1) / microbatches of extra time."""
        if self.d_pp == 1:
            return 0.0
        return (self.d_pp - 1) / self.num_microbatches

    def topology(self, gpus_per_node: int = 8) -> ShardTopology:
        return ShardTopology(d_dp=self.d_dp, d_ep=self.d_ep, gpus_per_node=gpus_per_node)


@dataclass(frozen=True)
class IterationTimes:
    """Breakdown of one iteration's duration (seconds)."""

    compute: float
    all_to_all: float
    dp_reduce: float
    update: float

    @property
    def fb(self) -> float:
        """Forward + backward wall time (compute + comms that live in it)."""
        return self.compute + self.all_to_all + self.dp_reduce

    @property
    def total(self) -> float:
        return self.fb + self.update


def ep_within_node(parallel: ParallelConfig, cluster: ClusterSpec) -> bool:
    """Whether an EP group fits inside one node (Case 3 vs Case 2)."""
    return parallel.d_ep * parallel.d_tp <= cluster.gpus_per_node


def iteration_times(
    spec: MoEModelSpec,
    parallel: ParallelConfig,
    cluster: ClusterSpec,
) -> IterationTimes:
    """Estimate the duration of one training iteration."""
    tokens = parallel.tokens_per_gpu
    # --- compute: F&B FLOPs sharded over TP and PP stages --------------
    flops = spec.train_flops_per_token() * tokens / (parallel.d_tp * parallel.d_pp)
    compute = flops / cluster.gpu.effective_flops
    # pipeline bubble stretches the critical path
    compute *= 1.0 + parallel.pipeline_bubble_fraction

    # --- all-to-all: dispatch + combine, forward + backward -----------
    a2a_payload = (
        spec.num_moe_layers
        * spec.a2a_bytes_per_token_per_layer()
        * tokens
        * 4  # dispatch+combine, x fwd+bwd
    )
    ep_nodes = -(-parallel.d_ep * parallel.d_tp // cluster.gpus_per_node)
    a2a_bw = cluster.a2a_bandwidth(ep_within_node(parallel, cluster), num_nodes=ep_nodes)
    all_to_all = a2a_payload / a2a_bw if parallel.d_ep > 1 else 0.0

    # --- DP gradient reduce-scatter (ZeRO-2) --------------------------
    # Non-expert grads reduce over all DP ranks; expert grads over the
    # expert's replicas (num EP groups).  Ring volume ~ 2 * bytes.
    model_shard = parallel.d_tp * parallel.d_pp
    grad_bytes_ne = spec.non_expert_params * B_W / model_shard
    local_experts = spec.num_moe_layers * spec.num_experts / (parallel.d_ep * parallel.d_pp)
    grad_bytes_e = local_experts * spec.expert_params * B_W / parallel.d_tp
    ring_crosses_nodes = parallel.num_gpus > cluster.gpus_per_node
    ring_bw = (
        cluster.inter_node_bandwidth if ring_crosses_nodes else cluster.intra_node_bandwidth
    )
    dp_reduce = 0.0
    if parallel.d_dp > 1:
        dp_reduce += 2 * grad_bytes_ne / ring_bw
    num_ep_groups = parallel.d_dp // parallel.d_ep
    if num_ep_groups > 1:
        dp_reduce += 2 * grad_bytes_e / ring_bw

    # --- optimizer update: stream the ZeRO-2 shard through HBM --------
    shard_params = (
        spec.non_expert_params / (parallel.d_dp * parallel.d_pp)
        + local_experts * spec.expert_params / max(num_ep_groups, 1)
    ) / parallel.d_tp
    # Read master+moments+grad, write master+moments+weights: ~4x bytes.
    update = shard_params * B_OPT * 4 / cluster.gpu.hbm_bandwidth
    # Floor: kernel launch and weight broadcast overheads.
    update = max(update, 0.2)

    return IterationTimes(
        compute=compute, all_to_all=all_to_all, dp_reduce=dp_reduce, update=update
    )
