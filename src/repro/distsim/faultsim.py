"""End-to-end fault-tolerance simulation of a long training run.

Where :mod:`repro.distsim.timeline` simulates a fault-free stretch of
iterations with checkpointing, this module simulates the *whole* run of
Eq. 3: iterations accrue wall-clock time (including per-checkpoint
``O_save``), faults arrive as a Poisson process, and each fault costs a
restart plus the progress since the last completed checkpoint.  The
result is the empirical counterpart of the Eq. 12/13 closed form — the
property tests check the two agree — and lets benches compare Full vs
MoC total overheads with confidence intervals rather than point
formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FaultSimConfig:
    """One method's parameters for a long-run simulation.

    All durations are in *iteration units* (1.0 = one fault-free,
    checkpoint-free iteration), matching the overhead model.
    """

    total_iterations: int
    checkpoint_interval: int
    o_save: float  # extra time per checkpointing process
    o_restart: float  # restart cost per fault
    fault_rate: float  # faults per unit time (~per iteration)
    persist_lag_checkpoints: int = 0  # checkpoints in flight (async persist)

    def __post_init__(self) -> None:
        if self.total_iterations < 1 or self.checkpoint_interval < 1:
            raise ValueError("iterations and interval must be >= 1")
        if min(self.o_save, self.o_restart, self.fault_rate) < 0:
            raise ValueError("costs must be non-negative")
        if self.persist_lag_checkpoints < 0:
            raise ValueError("persist lag must be non-negative")


@dataclass
class FaultSimResult:
    """Outcome of one simulated run."""

    wall_time: float
    ideal_time: float
    num_faults: int
    num_checkpoints: int
    lost_progress: float
    restart_time: float
    saving_time: float

    @property
    def overhead(self) -> float:
        """Total fault-tolerance overhead (the O_ckpt of Eq. 3)."""
        return self.wall_time - self.ideal_time

    @property
    def overhead_fraction(self) -> float:
        return self.overhead / self.ideal_time


def simulate_run(config: FaultSimConfig, rng: np.random.Generator) -> FaultSimResult:
    """Simulate one training run to completion.

    Progress advances iteration by iteration; a checkpoint completes
    every ``checkpoint_interval`` iterations of progress (costing
    ``o_save``).  Faults arrive with probability ``fault_rate`` per unit
    of wall time (thinned Bernoulli per iteration); each fault rewinds
    progress to the last *completed* checkpoint — which trails the most
    recent one by ``persist_lag_checkpoints`` when persists are still in
    flight — and pays ``o_restart``.
    """
    progress = 0  # completed iterations of useful work
    wall = 0.0
    saving = 0.0
    restarts = 0.0
    lost = 0.0
    faults = 0
    checkpoints = 0
    completed_checkpoint_at = 0  # progress value of last durable checkpoint
    recent_checkpoints: List[int] = [0]

    while progress < config.total_iterations:
        # one iteration of work
        step_time = 1.0
        at_checkpoint = (progress + 1) % config.checkpoint_interval == 0
        if at_checkpoint:
            step_time += config.o_save
        # fault during this step?
        fault_probability = 1.0 - np.exp(-config.fault_rate * step_time)
        if rng.random() < fault_probability:
            faults += 1
            wall += step_time  # the interrupted step's time is spent
            restarts += config.o_restart
            wall += config.o_restart
            lost += progress - completed_checkpoint_at
            progress = completed_checkpoint_at
            continue
        wall += step_time
        progress += 1
        if at_checkpoint:
            checkpoints += 1
            saving += config.o_save
            recent_checkpoints.append(progress)
            durable_index = max(0, len(recent_checkpoints) - 1 - config.persist_lag_checkpoints)
            completed_checkpoint_at = recent_checkpoints[durable_index]

    return FaultSimResult(
        wall_time=wall,  # replayed iterations re-accrue inside the loop
        ideal_time=float(config.total_iterations),
        num_faults=faults,
        num_checkpoints=checkpoints,
        lost_progress=float(lost),
        restart_time=restarts,
        saving_time=saving,
    )


def expected_overhead(config: FaultSimConfig) -> float:
    """The Eq. 12/13 closed form for this configuration."""
    n_ckpt = config.total_iterations / config.checkpoint_interval
    n_fault = config.fault_rate * config.total_iterations
    mean_lost = config.checkpoint_interval * (0.5 + config.persist_lag_checkpoints)
    return config.o_save * n_ckpt + n_fault * (config.o_restart + mean_lost)


def simulate_many(
    config: FaultSimConfig, runs: int, seed: int = 0
) -> List[FaultSimResult]:
    """Independent replications for confidence intervals."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    rng = np.random.default_rng(seed)
    return [simulate_run(config, rng) for _ in range(runs)]


def mean_overhead(results: List[FaultSimResult]) -> float:
    return float(np.mean([result.overhead for result in results]))


# ---------------------------------------------------------------------------
# Trace-driven and adaptive simulation.  ``simulate_run`` above is pinned
# by property tests against the closed form; these variants are separate
# functions so they can consume recorded fault traces and a live
# controller without perturbing it.
# ---------------------------------------------------------------------------


def simulate_run_with_faults(
    config: FaultSimConfig, fault_times: Sequence[float]
) -> FaultSimResult:
    """Deterministic replay: faults strike at the given wall-clock times.

    ``fault_times`` are absolute times (iteration units, sorted
    ascending) — e.g. a recorded trace from
    :class:`repro.chaos.traces.FaultTrace`.  A fault scheduled inside a
    step interrupts that step exactly as the stochastic simulator would:
    the step's time is spent, the restart is paid, and progress rewinds
    to the last durable checkpoint.  Multiple faults inside one step
    strike on consecutive attempts of it.  Faults past the end of the
    run are ignored.
    """
    times = sorted(float(t) for t in fault_times)
    next_fault = 0

    progress = 0
    wall = 0.0
    saving = 0.0
    restarts = 0.0
    lost = 0.0
    faults = 0
    checkpoints = 0
    completed_checkpoint_at = 0
    recent_checkpoints: List[int] = [0]

    while progress < config.total_iterations:
        step_time = 1.0
        at_checkpoint = (progress + 1) % config.checkpoint_interval == 0
        if at_checkpoint:
            step_time += config.o_save
        if next_fault < len(times) and times[next_fault] < wall + step_time:
            next_fault += 1
            faults += 1
            wall += step_time
            restarts += config.o_restart
            wall += config.o_restart
            lost += progress - completed_checkpoint_at
            progress = completed_checkpoint_at
            continue
        wall += step_time
        progress += 1
        if at_checkpoint:
            checkpoints += 1
            saving += config.o_save
            recent_checkpoints.append(progress)
            durable_index = max(0, len(recent_checkpoints) - 1 - config.persist_lag_checkpoints)
            completed_checkpoint_at = recent_checkpoints[durable_index]

    return FaultSimResult(
        wall_time=wall,
        ideal_time=float(config.total_iterations),
        num_faults=faults,
        num_checkpoints=checkpoints,
        lost_progress=float(lost),
        restart_time=restarts,
        saving_time=saving,
    )


def simulate_adaptive_run(
    config: FaultSimConfig,
    fault_times: Sequence[float],
    controller,
) -> Tuple[FaultSimResult, List[Tuple[float, float]]]:
    """Trace replay with a live controller retuning the interval.

    ``controller`` is duck-typed (``observe_fault(t)`` and
    ``checkpoint_interval(t)``, e.g.
    :class:`repro.core.adaptive.OnlineAdaptiveController`): every
    injected fault is reported to it, and the checkpoint cadence is
    re-read after each completed checkpoint and after each fault — so a
    rate step-change mid-trace shifts the interval mid-run, which is
    exactly the behaviour the chaos campaign's adaptive loop claims.
    ``config.checkpoint_interval`` seeds the initial cadence; the
    returned timeline lists ``(time, interval)`` pairs, one per
    re-read.
    """
    times = sorted(float(t) for t in fault_times)
    next_fault = 0

    def current_interval(now: float) -> int:
        interval = controller.checkpoint_interval(now)
        if not np.isfinite(interval):
            return config.total_iterations
        return max(1, int(round(interval)))

    progress = 0
    wall = 0.0
    saving = 0.0
    restarts = 0.0
    lost = 0.0
    faults = 0
    checkpoints = 0
    completed_checkpoint_at = 0
    recent_checkpoints: List[int] = [0]
    interval = max(1, int(config.checkpoint_interval))
    next_checkpoint_progress = interval
    timeline: List[Tuple[float, float]] = [(0.0, float(interval))]

    while progress < config.total_iterations:
        step_time = 1.0
        at_checkpoint = progress + 1 >= next_checkpoint_progress
        if at_checkpoint:
            step_time += config.o_save
        if next_fault < len(times) and times[next_fault] < wall + step_time:
            next_fault += 1
            faults += 1
            wall += step_time
            restarts += config.o_restart
            wall += config.o_restart
            lost += progress - completed_checkpoint_at
            progress = completed_checkpoint_at
            # Observed on the wall clock (the axis every interval query
            # uses): the controller sees faults when the run does, a
            # restart-delay after their scheduled trace times.
            controller.observe_fault(wall)
            interval = current_interval(wall)
            next_checkpoint_progress = progress + interval
            timeline.append((wall, float(interval)))
            continue
        wall += step_time
        progress += 1
        if at_checkpoint:
            checkpoints += 1
            saving += config.o_save
            recent_checkpoints.append(progress)
            durable_index = max(0, len(recent_checkpoints) - 1 - config.persist_lag_checkpoints)
            completed_checkpoint_at = recent_checkpoints[durable_index]
            interval = current_interval(wall)
            next_checkpoint_progress = progress + interval
            timeline.append((wall, float(interval)))

    result = FaultSimResult(
        wall_time=wall,
        ideal_time=float(config.total_iterations),
        num_faults=faults,
        num_checkpoints=checkpoints,
        lost_progress=float(lost),
        restart_time=restarts,
        saving_time=saving,
    )
    return result, timeline
