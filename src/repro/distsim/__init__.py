"""Distributed-training cluster simulation: specs, perf model, timelines."""

from .ckptsim import (
    CheckpointCost,
    build_workload,
    checkpoint_cost,
    pec_plan_for,
    persist_file_bytes,
)
from .faultsim import (
    FaultSimConfig,
    FaultSimResult,
    expected_overhead,
    mean_overhead,
    simulate_many,
    simulate_run,
)
from .hardware import A800, A800_CLUSTER, GB, H100, H100_CLUSTER, ClusterSpec, GPUSpec
from .modelspec import (
    B_MASTER,
    B_MOMENTS,
    B_OPT,
    B_TOTAL,
    B_W,
    MoEModelSpec,
    gpt_125m_8e,
    gpt_350m_16e,
    llama_moe,
)
from .perf import IterationTimes, ParallelConfig, ep_within_node, iteration_times
from .timeline import (
    IterationRecord,
    TimelineConfig,
    TimelineResult,
    min_checkpoint_interval_iterations,
    simulate_timeline,
)
from .topology import Deployment, case1, case2, case3, paper_cases

__all__ = [
    "A800",
    "A800_CLUSTER",
    "B_MASTER",
    "B_MOMENTS",
    "B_OPT",
    "B_TOTAL",
    "B_W",
    "CheckpointCost",
    "ClusterSpec",
    "Deployment",
    "FaultSimConfig",
    "FaultSimResult",
    "GB",
    "GPUSpec",
    "H100",
    "H100_CLUSTER",
    "IterationRecord",
    "IterationTimes",
    "MoEModelSpec",
    "ParallelConfig",
    "TimelineConfig",
    "TimelineResult",
    "build_workload",
    "case1",
    "case2",
    "case3",
    "checkpoint_cost",
    "ep_within_node",
    "expected_overhead",
    "gpt_125m_8e",
    "gpt_350m_16e",
    "iteration_times",
    "llama_moe",
    "mean_overhead",
    "min_checkpoint_interval_iterations",
    "paper_cases",
    "pec_plan_for",
    "persist_file_bytes",
    "simulate_many",
    "simulate_run",
    "simulate_timeline",
]
