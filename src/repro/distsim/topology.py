"""The paper's deployment cases (Table 2) and deployment bundles.

``Deployment`` ties together everything the benches need to cost a
configuration: model spec, parallel degrees, rank topology and hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sharding import ShardTopology
from .hardware import A800_CLUSTER, ClusterSpec
from .modelspec import MoEModelSpec, gpt_350m_16e
from .perf import IterationTimes, ParallelConfig, iteration_times


@dataclass(frozen=True)
class Deployment:
    """A concrete training deployment to simulate."""

    name: str
    spec: MoEModelSpec
    parallel: ParallelConfig
    cluster: ClusterSpec

    @property
    def topology(self) -> ShardTopology:
        return self.parallel.topology(self.cluster.gpus_per_node)

    def iteration_times(self) -> IterationTimes:
        return iteration_times(self.spec, self.parallel, self.cluster)

    @property
    def experts_per_gpu(self) -> int:
        return self.spec.num_experts // self.parallel.d_ep


# Tokens per GPU chosen so GPT-350M-16E F&B lands in the couple-of-seconds
# range of Figure 11 under the A800 calibration.
_CASE_TOKENS = 48 * 1024


def case1(spec: MoEModelSpec = None, cluster: ClusterSpec = A800_CLUSTER) -> Deployment:
    """Case 1: 1 node x 8 GPUs, DP=8, EP=8 (2 experts/GPU)."""
    spec = spec or gpt_350m_16e()
    return Deployment(
        name="Case1",
        spec=spec,
        parallel=ParallelConfig(d_dp=8, d_ep=8, tokens_per_gpu=_CASE_TOKENS),
        cluster=cluster,
    )


def case2(spec: MoEModelSpec = None, cluster: ClusterSpec = A800_CLUSTER) -> Deployment:
    """Case 2: 2 nodes x 8 GPUs, DP=16, EP=16 (1 expert/GPU, EP crosses nodes)."""
    spec = spec or gpt_350m_16e()
    return Deployment(
        name="Case2",
        spec=spec,
        parallel=ParallelConfig(d_dp=16, d_ep=16, tokens_per_gpu=_CASE_TOKENS),
        cluster=cluster,
    )


def case3(spec: MoEModelSpec = None, cluster: ClusterSpec = A800_CLUSTER) -> Deployment:
    """Case 3: 2 nodes x 8 GPUs, DP=16, EP=8 (2 EP groups, EP intra-node)."""
    spec = spec or gpt_350m_16e()
    return Deployment(
        name="Case3",
        spec=spec,
        parallel=ParallelConfig(d_dp=16, d_ep=8, tokens_per_gpu=_CASE_TOKENS),
        cluster=cluster,
    )


def paper_cases(cluster: ClusterSpec = A800_CLUSTER) -> list:
    return [case1(cluster=cluster), case2(cluster=cluster), case3(cluster=cluster)]
