"""Parameter and checkpoint-byte accounting for MoE model specs.

Implements the paper's size arithmetic exactly (Eqs. 5-6 plus the
component-aware byte model calibrated in DESIGN.md):

* per-parameter bytes: ``B_W = 2`` (bf16 weight), ``B_MASTER = 4`` (fp32
  master copy), ``B_MOMENTS = 8`` (two fp32 Adam moments);
* PEC applies to weights and/or moments of unselected experts; the
  master copy is always written.

With the GPT-350M-16E spec this reproduces Figure 2's checkpoint
composition (~12% expert params / 2% non-expert params / 74% expert
optimizer / 12% non-expert optimizer), Figure 10(a)'s size ladder
(100/69.2/53.8/46.1/42.3 %) and Table 3's "Ckpt" column (W 0.88 /
O 0.54 / WO 0.42).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

B_W = 2  # bf16 weight bytes per parameter
B_MASTER = 4  # fp32 master copy
B_MOMENTS = 8  # fp32 Adam m + v
B_OPT = B_MASTER + B_MOMENTS
B_TOTAL = B_W + B_OPT


@dataclass(frozen=True)
class MoEModelSpec:
    """Architecture description sufficient for parameter accounting."""

    name: str
    vocab_size: int
    hidden: int
    num_layers: int
    num_heads: int
    head_dim: int
    ffn_mult: int
    num_moe_layers: int
    num_experts: int
    top_k: int = 1
    seq_len: int = 2048
    other_state_bytes: int = 1 << 20  # RNG states, iteration counters, ...

    def __post_init__(self) -> None:
        if self.num_moe_layers > self.num_layers:
            raise ValueError("more MoE layers than transformer layers")
        if self.num_heads * self.head_dim <= 0:
            raise ValueError("invalid attention geometry")

    # ------------------------------------------------------------------
    # Parameter counts
    # ------------------------------------------------------------------
    @property
    def attention_params_per_layer(self) -> int:
        model_dim = self.hidden
        attn_dim = self.num_heads * self.head_dim
        # QKV projections + output projection (biases negligible).
        return 3 * model_dim * attn_dim + attn_dim * model_dim

    @property
    def dense_ffn_params_per_layer(self) -> int:
        return 2 * self.ffn_mult * self.hidden * self.hidden

    @property
    def expert_params(self) -> int:
        """Parameters of ONE expert (an FFN of the dense shape)."""
        return self.dense_ffn_params_per_layer

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden + self.seq_len * self.hidden

    @property
    def gate_params(self) -> int:
        return self.num_moe_layers * self.hidden * self.num_experts

    @property
    def num_dense_ffn_layers(self) -> int:
        return self.num_layers - self.num_moe_layers

    @property
    def non_expert_params(self) -> int:
        layernorms = self.num_layers * 4 * self.hidden + 2 * self.hidden
        return (
            self.embedding_params
            + self.num_layers * self.attention_params_per_layer
            + self.num_dense_ffn_layers * self.dense_ffn_params_per_layer
            + self.gate_params
            + layernorms
        )

    @property
    def total_expert_params(self) -> int:
        return self.num_moe_layers * self.num_experts * self.expert_params

    @property
    def total_params(self) -> int:
        return self.non_expert_params + self.total_expert_params

    @property
    def expert_fraction(self) -> float:
        return self.total_expert_params / self.total_params

    @property
    def active_params_per_token(self) -> int:
        """Parameters touched per token (sparse activation)."""
        return self.non_expert_params + self.num_moe_layers * self.top_k * self.expert_params

    # ------------------------------------------------------------------
    # Checkpoint bytes (Eqs. 5-6, component-aware)
    # ------------------------------------------------------------------
    def full_checkpoint_bytes(self) -> int:
        """Eq. 5: C_full = (P_ne + P_e) * (B_w + B_o) + other."""
        return self.total_params * B_TOTAL + self.other_state_bytes

    def pec_checkpoint_bytes(
        self,
        k: int,
        apply_to_weights: bool = True,
        apply_to_moments: bool = True,
    ) -> int:
        """Eq. 6 generalised per component.

        An expert not selected by PEC skips its weight bytes (if
        ``apply_to_weights``) and its moment bytes (if
        ``apply_to_moments``); master bytes are always written.
        """
        if not 1 <= k <= self.num_experts:
            raise ValueError(f"k={k} out of range [1, {self.num_experts}]")
        saved_fraction = k / self.num_experts
        expert_bytes_per_param = B_MASTER
        expert_bytes_per_param += B_W * (saved_fraction if apply_to_weights else 1.0)
        expert_bytes_per_param += B_MOMENTS * (saved_fraction if apply_to_moments else 1.0)
        expert_bytes = int(self.total_expert_params * expert_bytes_per_param)
        return self.non_expert_params * B_TOTAL + expert_bytes + self.other_state_bytes

    def checkpoint_composition(self) -> Dict[str, float]:
        """Figure 2's pie: fraction of a full checkpoint per component."""
        total = self.full_checkpoint_bytes()
        return {
            "expert_params": self.total_expert_params * B_W / total,
            "non_expert_params": self.non_expert_params * B_W / total,
            "expert_optimizer": self.total_expert_params * B_OPT / total,
            "non_expert_optimizer": self.non_expert_params * B_OPT / total,
            "other": self.other_state_bytes / total,
        }

    # ------------------------------------------------------------------
    # Sharding inputs
    # ------------------------------------------------------------------
    def non_expert_param_items(self) -> List[Tuple[str, int]]:
        """Layer-granularity non-expert weight items (Section 4.2)."""
        items: List[Tuple[str, int]] = [
            ("embedding", self.embedding_params * B_W),
        ]
        for layer in range(self.num_layers):
            items.append((f"attn{layer}", self.attention_params_per_layer * B_W))
        for layer in range(self.num_dense_ffn_layers):
            items.append((f"ffn{layer}", self.dense_ffn_params_per_layer * B_W))
        for layer in range(self.num_moe_layers):
            items.append((f"gate{layer}", self.hidden * self.num_experts * B_W))
        items.append(("final_norm", 2 * self.hidden * B_W))
        return items

    # ------------------------------------------------------------------
    # Compute accounting
    # ------------------------------------------------------------------
    def train_flops_per_token(self) -> float:
        """~6 FLOPs per active parameter per token (fwd 2x + bwd 4x)."""
        return 6.0 * self.active_params_per_token

    def a2a_bytes_per_token_per_layer(self, activation_bytes: int = 2) -> float:
        """All-to-all payload per token per MoE layer, one direction.

        Dispatch sends ``top_k`` copies of the hidden vector; combine
        returns them — and backward mirrors both.
        """
        return self.top_k * self.hidden * activation_bytes


# ----------------------------------------------------------------------
# Paper model instances (Table 1 and Section 6.2.4)
# ----------------------------------------------------------------------

def gpt_350m_16e() -> MoEModelSpec:
    """GPT-350M-16E: 24 layers, hidden 1024, 16 heads, 12 MoE x 16 experts."""
    return MoEModelSpec(
        name="GPT-350M-16E",
        vocab_size=50257,
        hidden=1024,
        num_layers=24,
        num_heads=16,
        head_dim=64,
        ffn_mult=4,
        num_moe_layers=12,
        num_experts=16,
        top_k=1,
        seq_len=2048,
    )


def gpt_125m_8e() -> MoEModelSpec:
    """GPT-125M-8E: 12 layers, hidden 768, 12 heads, 6 MoE x 8 experts."""
    return MoEModelSpec(
        name="GPT-125M-8E",
        vocab_size=50257,
        hidden=768,
        num_layers=12,
        num_heads=12,
        head_dim=64,
        ffn_mult=4,
        num_moe_layers=6,
        num_experts=8,
        top_k=1,
        seq_len=2048,
    )


def llama_moe(
    num_experts: int,
    hidden: int = 2048,
    num_layers: int = 24,
    seq_len: int = 2048,
    top_k: int = 1,
) -> MoEModelSpec:
    """The LLaMA-like MoE of Section 6.2.4: hidden 2048, 16 heads x 128,
    expert intermediate 4x hidden, 24 layers, every layer MoE."""
    return MoEModelSpec(
        name=f"LLaMA-MoE-{num_experts}E-h{hidden}",
        vocab_size=32000,
        hidden=hidden,
        num_heads=16,
        head_dim=128,
        num_layers=num_layers,
        ffn_mult=4,
        num_moe_layers=num_layers,
        num_experts=num_experts,
        top_k=top_k,
        seq_len=seq_len,
    )
