"""Hardware profiles for the cluster simulator.

Calibration follows Section 6.2.4: A800 at 312 TFLOPS with 20%
utilisation and 1 GB/s GPU-to-CPU snapshot bandwidth; H100 at 989 TFLOPS,
20% utilisation, 2 GB/s snapshot bandwidth.  Interconnect and storage
numbers are representative of the paper's testbed class (NVLink intra-
node, HDR InfiniBand inter-node, a distributed filesystem per node).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

GB = 1024**3
TFLOP = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """A single accelerator's capabilities."""

    name: str
    peak_tflops: float  # dense peak, TFLOPS
    utilization: float  # achieved fraction of peak for F&B
    d2h_bandwidth: float  # GPU->CPU snapshot bandwidth, bytes/s
    hbm_bandwidth: float  # device memory bandwidth, bytes/s

    @property
    def effective_flops(self) -> float:
        return self.peak_tflops * TFLOP * self.utilization


@dataclass(frozen=True)
class ClusterSpec:
    """Node and fabric characteristics."""

    gpu: GPUSpec
    gpus_per_node: int = 8
    intra_node_bandwidth: float = 200 * GB  # NVLink, bytes/s per GPU pair
    inter_node_bandwidth: float = 25 * GB  # IB per node, bytes/s
    storage_bandwidth_per_node: float = 6 * GB  # to distributed FS, bytes/s

    # Cross-node collectives degrade super-linearly with participant count
    # (fat-tree oversubscription, incast); ASTRA-sim models this via its
    # network topology — we approximate it with a power-law divisor.
    congestion_exponent: float = 0.6

    def a2a_bandwidth(self, ep_within_node: bool, num_nodes: int = 1) -> float:
        """Effective per-GPU all-to-all bandwidth for expert dispatch.

        ``num_nodes`` is the number of nodes the EP group spans; bandwidth
        decays as ``nodes ** -congestion_exponent`` once it leaves a node.
        """
        if ep_within_node:
            return self.intra_node_bandwidth
        factor = max(num_nodes, 1) ** self.congestion_exponent
        return self.inter_node_bandwidth / factor

    def with_gpu(self, gpu: GPUSpec) -> "ClusterSpec":
        return replace(self, gpu=gpu)


A800 = GPUSpec(
    name="A800",
    peak_tflops=312.0,
    utilization=0.20,
    d2h_bandwidth=1 * GB,
    hbm_bandwidth=2039 * GB // 1,
)

H100 = GPUSpec(
    name="H100",
    peak_tflops=989.0,
    utilization=0.20,
    d2h_bandwidth=2 * GB,
    hbm_bandwidth=3350 * GB // 1,
)

A800_CLUSTER = ClusterSpec(gpu=A800)
H100_CLUSTER = ClusterSpec(
    gpu=H100,
    intra_node_bandwidth=450 * GB,
    inter_node_bandwidth=50 * GB,
    storage_bandwidth_per_node=8 * GB,
)
