"""Event-driven timeline of training + asynchronous checkpointing.

Simulates the Figure 3 / Figure 9 pipeline: iterations of (F&B, update)
interleaved with two-phase checkpoints.  The GPU->CPU snapshot overlaps
the *next* iteration's F&B but must finish before its weight update
(stalling otherwise); the CPU->storage persist runs free of the GPU but
serialises through the triple-buffer pool, which bounds how often
checkpoints can start.

Three modes reproduce Figure 12's methods:

* ``blocking``  — the Megatron-DeepSpeed baseline: the checkpoint runs
  synchronously inside the iteration (snapshot + persist back-to-back);
* ``async``     — two-phase asynchronous checkpointing with the buffer
  pool ("Base-Async" when fed full-checkpoint durations, "MoC-Async"
  when fed PEC + fully-sharded durations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional

from ..core.buffers import BufferStatus, TripleBuffer

Mode = Literal["blocking", "async"]


@dataclass(frozen=True)
class TimelineConfig:
    """Durations (seconds) and schedule for a simulated run."""

    t_fb: float
    t_update: float
    t_snapshot: float
    t_persist: float
    num_iterations: int = 50
    checkpoint_interval: int = 1
    mode: Mode = "async"
    num_buffers: int = 3

    def __post_init__(self) -> None:
        if min(self.t_fb, self.t_update, self.t_snapshot, self.t_persist) < 0:
            raise ValueError("durations must be non-negative")
        if self.num_iterations < 1 or self.checkpoint_interval < 1:
            raise ValueError("iterations and interval must be >= 1")


@dataclass
class IterationRecord:
    index: int
    fb: float
    stall: float
    update: float
    blocking_checkpoint: float
    checkpoint_started: bool
    checkpoint_deferred: bool

    @property
    def duration(self) -> float:
        return self.fb + self.stall + self.update + self.blocking_checkpoint


@dataclass
class TimelineResult:
    records: List[IterationRecord]
    total_time: float
    checkpoints_started: int
    checkpoints_persisted: int
    deferred_attempts: int

    @property
    def plain_iteration_time(self) -> float:
        """Iteration duration with no checkpointing activity."""
        return min(record.duration for record in self.records)

    @property
    def checkpoint_iteration_time(self) -> float:
        """Mean duration of iterations that carry checkpoint overhead.

        For async mode the overhead (stall) lands on the iteration after
        the snapshot starts; we attribute each checkpoint's overhead to
        the window it affects by averaging over windows of
        ``checkpoint_interval`` iterations that contain a start.
        """
        affected = [
            record.duration
            for record in self.records
            if record.blocking_checkpoint > 0 or record.stall > 0
        ]
        if not affected:
            started = [r.duration for r in self.records if r.checkpoint_started]
            return max(started) if started else self.plain_iteration_time
        return sum(affected) / len(affected)

    @property
    def o_save(self) -> float:
        """Mean per-checkpoint overhead beyond normal training (O_save)."""
        if self.checkpoints_started == 0:
            return 0.0
        base = self.plain_iteration_time
        extra = sum(record.duration - base for record in self.records)
        return max(extra, 0.0) / self.checkpoints_started

    @property
    def achieved_interval(self) -> float:
        """Mean iterations between checkpoint starts (effective I_ckpt)."""
        if self.checkpoints_started == 0:
            return float("inf")
        return len(self.records) / self.checkpoints_started


def simulate_timeline(config: TimelineConfig) -> TimelineResult:
    """Run the timeline; see module docstring for semantics."""
    if config.mode == "blocking":
        return _simulate_blocking(config)
    return _simulate_async(config)


def _simulate_blocking(config: TimelineConfig) -> TimelineResult:
    records: List[IterationRecord] = []
    now = 0.0
    checkpoints = 0
    for index in range(1, config.num_iterations + 1):
        ckpt = index % config.checkpoint_interval == 0
        blocking = (config.t_snapshot + config.t_persist) if ckpt else 0.0
        if ckpt:
            checkpoints += 1
        record = IterationRecord(
            index=index,
            fb=config.t_fb,
            stall=0.0,
            update=config.t_update,
            blocking_checkpoint=blocking,
            checkpoint_started=ckpt,
            checkpoint_deferred=False,
        )
        now += record.duration
        records.append(record)
    return TimelineResult(
        records=records,
        total_time=now,
        checkpoints_started=checkpoints,
        checkpoints_persisted=checkpoints,
        deferred_attempts=0,
    )


def _simulate_async(config: TimelineConfig) -> TimelineResult:
    records: List[IterationRecord] = []
    buffers = TripleBuffer(num_buffers=config.num_buffers)
    now = 0.0
    snapshot_remaining = 0.0
    snapshot_active = False
    persist_done_at: Optional[float] = None
    checkpoints_started = 0
    checkpoints_persisted = 0
    deferred = 0

    def drain_persists(current: float) -> int:
        """Complete any persist whose finish time has passed."""
        nonlocal persist_done_at
        finished = 0
        while persist_done_at is not None and persist_done_at <= current:
            done_time = persist_done_at
            buffers.finish_persist(done_time)
            finished += 1
            if buffers.persisting is not None:
                persist_done_at = done_time + config.t_persist
            else:
                persist_done_at = None
        return finished

    for index in range(1, config.num_iterations + 1):
        # --- F&B phase: snapshot (if any) progresses underneath -------
        fb = config.t_fb
        stall = 0.0
        if snapshot_active:
            snapshot_remaining -= fb
            if snapshot_remaining > 0:
                stall = snapshot_remaining  # checkpoint stall "S"
                snapshot_remaining = 0.0
        now += fb + stall
        checkpoints_persisted += drain_persists(now)
        if snapshot_active and snapshot_remaining <= 0:
            buffers.finish_snapshot(now)
            snapshot_active = False
            if buffers.persisting is not None and persist_done_at is None:
                persist_done_at = now + config.t_persist

        # --- update phase ---------------------------------------------
        now += config.t_update
        checkpoints_persisted += drain_persists(now)

        # --- checkpoint trigger ----------------------------------------
        started = False
        was_deferred = False
        if index % config.checkpoint_interval == 0:
            if not snapshot_active and buffers.can_start_snapshot():
                buffers.start_snapshot(checkpoints_started, now)
                snapshot_active = True
                snapshot_remaining = config.t_snapshot
                checkpoints_started += 1
                started = True
            else:
                deferred += 1
                was_deferred = True

        records.append(
            IterationRecord(
                index=index,
                fb=fb,
                stall=stall,
                update=config.t_update,
                blocking_checkpoint=0.0,
                checkpoint_started=started,
                checkpoint_deferred=was_deferred,
            )
        )

    return TimelineResult(
        records=records,
        total_time=now,
        checkpoints_started=checkpoints_started,
        checkpoints_persisted=checkpoints_persisted,
        deferred_attempts=deferred,
    )


def min_checkpoint_interval_iterations(
    t_persist: float, iteration_time: float, num_buffers: int = 3
) -> float:
    """Lower bound on I_ckpt (iterations) imposed by the persist phase.

    With one persist in flight at a time and ``num_buffers - 2`` queued
    snapshots tolerated, sustained checkpointing cannot outpace one
    persist per ``t_persist`` seconds (Section 5.3: persist duration
    determines the lower bound for I_ckpt).
    """
    if iteration_time <= 0:
        raise ValueError("iteration_time must be positive")
    return t_persist / iteration_time
