"""Per-rank checkpoint workloads and durations for a deployment.

Bridges the model spec (bytes), the sharding planner (who writes what)
and the hardware profile (how fast) into the quantities the figures
plot: bottleneck-rank checkpoint bytes (Figure 10(b-d)), snapshot and
persist durations (Figure 11), and total persisted file size
(Figure 13(f)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import ShardingPolicy
from ..core.pec import PECPlan, PECPlanner
from ..core.sharding import (
    CheckpointWorkload,
    ShardPlan,
    ShardTopology,
    plan_checkpoint_shards,
)
from .hardware import ClusterSpec
from .modelspec import B_MASTER, B_MOMENTS, B_W, MoEModelSpec


def build_workload(spec: MoEModelSpec) -> CheckpointWorkload:
    """Translate a model spec into the sharding planner's byte inputs."""
    return CheckpointWorkload(
        non_expert_param_items=spec.non_expert_param_items(),
        expert_param_bytes=spec.expert_params * B_W,
        num_moe_layers=spec.num_moe_layers,
        num_experts=spec.num_experts,
        non_expert_master_bytes=spec.non_expert_params * B_MASTER,
        non_expert_moment_bytes=spec.non_expert_params * B_MOMENTS,
        expert_master_bytes=spec.expert_params * B_MASTER,
        expert_moment_bytes=spec.expert_params * B_MOMENTS,
        other_bytes=spec.other_state_bytes,
    )


@dataclass(frozen=True)
class CheckpointCost:
    """One checkpoint's cost under a given plan + hardware."""

    plan: ShardPlan
    bottleneck_rank_bytes: int
    total_bytes: int
    bottleneck_node_bytes: int
    snapshot_seconds: float  # bottleneck rank GPU->CPU
    persist_seconds: float  # bottleneck node CPU->storage


def checkpoint_cost(
    spec: MoEModelSpec,
    topology: ShardTopology,
    cluster: ClusterSpec,
    policy: ShardingPolicy,
    pec_plan: Optional[PECPlan] = None,
) -> CheckpointCost:
    """Cost of one checkpointing process for a deployment.

    Snapshot time is governed by the rank with the largest assignment
    (PCIe is per-GPU); persist time by the node with the largest
    aggregate (the node's storage link is shared by its ranks).
    """
    workload = build_workload(spec)
    plan = plan_checkpoint_shards(topology, workload, policy, pec_plan=pec_plan)
    bottleneck = plan.bottleneck_bytes()
    node_bytes = [plan.node_bytes(node) for node in range(topology.num_nodes)]
    bottleneck_node = max(node_bytes) if node_bytes else 0
    return CheckpointCost(
        plan=plan,
        bottleneck_rank_bytes=bottleneck,
        total_bytes=plan.total_bytes(),
        bottleneck_node_bytes=bottleneck_node,
        snapshot_seconds=bottleneck / cluster.gpu.d2h_bandwidth,
        persist_seconds=bottleneck_node / cluster.storage_bandwidth_per_node,
    )


def pec_plan_for(
    spec: MoEModelSpec,
    k_snapshot: int,
    k_persist: Optional[int] = None,
    checkpoint_index: int = 0,
    apply_to_weights: bool = True,
    apply_to_moments: bool = True,
) -> PECPlan:
    """Convenience: a sequential-selection PEC plan for a model spec."""
    from ..core.config import PECConfig

    k_persist = k_snapshot if k_persist is None else k_persist
    config = PECConfig(
        k_snapshot=min(k_snapshot, spec.num_experts),
        k_persist=min(k_persist, spec.num_experts),
        apply_to_weights=apply_to_weights,
        apply_to_moments=apply_to_moments,
    )
    planner = PECPlanner(config, spec.num_moe_layers, spec.num_experts)
    return planner.plan(checkpoint_index)


@dataclass(frozen=True)
class AsyncWriteWindow:
    """Overlap model for the double-buffered persist pipeline.

    Mirrors :class:`~repro.ckpt.async_writer.AsyncWriteBackend`: once a
    checkpoint's entries are staged, the write drains during subsequent
    training compute.  With ``queue_depth`` checkpoints' worth of staging
    buffers, a persist may keep draining until the buffer is needed again
    — ``queue_depth * checkpoint_interval`` iterations later.  Whatever
    does not fit in that window stalls the training loop.
    """

    window_seconds: float  # compute time available to hide the persist
    stall_seconds: float  # residual blocking time per checkpoint
    hidden_fraction: float  # share of the persist hidden under compute

    @property
    def fully_overlapped(self) -> bool:
        return self.stall_seconds == 0.0


def overlapped_write_window(
    persist_seconds: float,
    iteration_seconds: float,
    checkpoint_interval: int,
    queue_depth: int = 2,
) -> AsyncWriteWindow:
    """Stall per checkpoint under the async double-buffered pipeline.

    ``persist_seconds`` is the synchronous persist duration (e.g.
    :attr:`CheckpointCost.persist_seconds`); the returned stall is what
    remains after overlapping it with ``queue_depth`` checkpoint
    intervals of compute.
    """
    if iteration_seconds <= 0:
        raise ValueError("iteration_seconds must be positive")
    if checkpoint_interval < 1 or queue_depth < 1:
        raise ValueError("checkpoint_interval and queue_depth must be >= 1")
    window = queue_depth * checkpoint_interval * iteration_seconds
    stall = max(0.0, persist_seconds - window)
    hidden = 1.0 if persist_seconds <= 0 else (persist_seconds - stall) / persist_seconds
    return AsyncWriteWindow(
        window_seconds=window, stall_seconds=stall, hidden_fraction=hidden
    )


@dataclass(frozen=True)
class ReshardRecoveryCost:
    """Restore cost when the resume topology differs from the save one.

    Mirrors :mod:`repro.core.reshard` + the parallel restore pipeline:
    every persisted byte must be read back; ZeRO-2 optimizer partitions
    are re-sliced (misaligned partition boundaries split reads into
    extra segments); the parallel pipeline lets every target node drain
    its share concurrently while a serial restore funnels everything
    through one reader.
    """

    source: ShardTopology
    target: ShardTopology
    total_bytes: int
    bottleneck_rank_bytes: int
    read_ops: int  # entry reads + re-slice segments
    serial_seconds: float  # one reader drains everything
    parallel_seconds: float  # per-node concurrent readers

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.parallel_seconds if self.parallel_seconds > 0 else 1.0


def partition_overlap_segments(source_parts: int, target_parts: int) -> int:
    """Contiguous (source, target) overlap pairs when one byte range is
    equally partitioned two ways: ``S + T - gcd(S, T)``.

    Each pair is one read segment a re-slicing target rank must issue;
    aligned repartitions (``T`` divides ``S`` or vice versa) reduce to
    ``max(S, T)`` segments, the no-amplification case.
    """
    import math

    if source_parts < 1 or target_parts < 1:
        raise ValueError("partition counts must be >= 1")
    return source_parts + target_parts - math.gcd(source_parts, target_parts)


def reshard_recovery_cost(
    spec: MoEModelSpec,
    source: ShardTopology,
    target: ShardTopology,
    cluster: ClusterSpec,
    k_persist: Optional[int] = None,
    read_op_latency: float = 5e-4,
) -> ReshardRecoveryCost:
    """Cost one resharded restore of ``spec`` saved under ``source``.

    ``read_op_latency`` models the per-read round trip of a networked
    persist tier; bandwidth comes from the cluster's per-node storage
    link.  Serial restore pays every op's latency back to back; the
    parallel pipeline overlaps latency across a node's concurrent
    readers and lets nodes drain their byte shares simultaneously.
    """
    if spec.num_experts % target.d_ep != 0:
        raise ValueError(
            f"cannot reshard to d_ep={target.d_ep}: num_experts="
            f"{spec.num_experts} is not divisible by it"
        )
    total = persist_file_bytes(spec, source, k_persist)
    ranks = target.num_ranks
    per_rank = (total + ranks - 1) // ranks  # balanced re-slice
    selected = spec.num_experts if k_persist is None else min(k_persist, spec.num_experts)
    expert_entries = spec.num_moe_layers * selected * 2  # weights + optimizer
    ne_entries = len(spec.non_expert_param_items())
    reslice_segments = partition_overlap_segments(source.num_ranks, target.num_ranks)
    read_ops = ne_entries + expert_entries + reslice_segments

    bandwidth = cluster.storage_bandwidth_per_node
    serial = total / bandwidth + read_ops * read_op_latency
    nodes = target.num_nodes
    ranks_per_node = min(target.gpus_per_node, ranks)
    # A node never reads more than the checkpoint holds (the per-rank
    # ceil rounding would otherwise overshoot on a single node).
    bottleneck_node_bytes = min(per_rank * ranks_per_node, total)
    ops_per_node = (read_ops + nodes - 1) // nodes
    # Within a node, concurrent readers pipeline their request latency
    # while sharing the storage link's bandwidth.
    parallel = bottleneck_node_bytes / bandwidth + (
        ops_per_node / max(ranks_per_node, 1)
    ) * read_op_latency
    return ReshardRecoveryCost(
        source=source,
        target=target,
        total_bytes=total,
        bottleneck_rank_bytes=per_rank,
        read_ops=read_ops,
        serial_seconds=serial,
        parallel_seconds=parallel,
    )


@dataclass(frozen=True)
class DedupWriteCost:
    """Persisted-bytes-per-checkpoint model under chunk reuse.

    Mirrors :class:`~repro.ckpt.dedup.DedupBackend`: a PEC checkpoint
    accepts ``logical_bytes`` of serialized entries, but only chunks
    whose content changed since their last persisted version hit
    storage.  Whole-entry reuse (delta saves skipping untouched
    experts) removes bytes *and* manifest metadata; partial change
    dirties whole chunks (a single changed byte re-writes its chunk),
    which is the granularity tax ``chunk_bytes`` trades against
    manifest overhead (one digest per chunk, every save).
    """

    logical_bytes: int  # serialized bytes the checkpoint accepts
    unique_bytes: int  # novel chunk bytes written to storage
    manifest_bytes: int  # digest-list metadata journaled per save
    chunk_bytes: int
    chunks_referenced: int
    chunks_written: int

    @property
    def persisted_bytes(self) -> int:
        """What actually lands on storage for one checkpoint."""
        return self.unique_bytes + self.manifest_bytes

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes per persisted byte (>= 1 under reuse)."""
        if self.persisted_bytes <= 0:
            return 1.0
        return self.logical_bytes / self.persisted_bytes


def dedup_write_cost(
    spec: MoEModelSpec,
    k_persist: Optional[int] = None,
    chunk_bytes: int = 64 * 1024,
    changed_chunk_fraction: float = 1.0,
    unchanged_entry_fraction: float = 0.0,
    digest_bytes: int = 32,
) -> DedupWriteCost:
    """Steady-state persisted bytes for one PEC+dedup checkpoint.

    ``unchanged_entry_fraction`` is the share of the selected payload
    whose entries are bit-identical to their last persisted version
    (untouched experts under sparse routing, frozen layers): the
    manager's delta-save check drops them before serialization, so
    they cost neither chunks nor manifest digests.  Of the remaining
    bytes, ``changed_chunk_fraction`` of the chunks are dirty — a
    changed byte dirties its whole chunk, so this is a *chunk*-level
    fraction.  ``digest_bytes`` prices the manifest journal (one
    SHA-256 per referenced chunk, re-journaled every save).
    """
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    if not 0.0 <= changed_chunk_fraction <= 1.0:
        raise ValueError("changed_chunk_fraction must be in [0, 1]")
    if not 0.0 <= unchanged_entry_fraction <= 1.0:
        raise ValueError("unchanged_entry_fraction must be in [0, 1]")
    if digest_bytes < 0:
        raise ValueError("digest_bytes must be >= 0")
    logical = (
        spec.full_checkpoint_bytes()
        if k_persist is None
        else spec.pec_checkpoint_bytes(min(k_persist, spec.num_experts))
    )
    import math

    delta_logical = int(round(logical * (1.0 - unchanged_entry_fraction)))
    chunks_referenced = math.ceil(delta_logical / chunk_bytes) if delta_logical else 0
    chunks_written = math.ceil(chunks_referenced * changed_chunk_fraction)
    unique = min(chunks_written * chunk_bytes, delta_logical)
    return DedupWriteCost(
        logical_bytes=logical,
        unique_bytes=unique,
        manifest_bytes=chunks_referenced * digest_bytes,
        chunk_bytes=chunk_bytes,
        chunks_referenced=chunks_referenced,
        chunks_written=chunks_written,
    )


def persist_file_bytes(
    spec: MoEModelSpec, topology: ShardTopology, k_persist: Optional[int] = None
) -> int:
    """Total bytes landing on the cluster filesystem per checkpoint.

    ``k_persist=None`` means full saving.  Used for Figure 13(f)'s
    Base-Persist vs MoC-Persist comparison.
    """
    if k_persist is None:
        return spec.full_checkpoint_bytes()
    return spec.pec_checkpoint_bytes(k_persist)


def pec_local_hit_fraction(
    num_experts: int, k_persist: int, local_keep_stamps: int
) -> float:
    """Share of a restore served by a keep-last-k local tier under PEC.

    PEC's round-robin selection persists ``k_persist`` of
    ``num_experts`` experts per checkpoint, so the latest durable
    version of the full population spans the most recent
    ``ceil(E / K)`` checkpoint stamps.  A two-level store that keeps
    the newest ``local_keep_stamps`` stamps on its local tier therefore
    serves ``min(keep, span) / span`` of the restored expert entries
    locally — the rest fall through to the remote tier.  Growing either
    ``k_persist`` (shrinking the span) or ``local_keep_stamps`` widens
    local coverage, which is the Figure 15(a) mechanism: more of the
    recovery set resident on the fast tier.
    """
    import math

    if num_experts < 1 or k_persist < 1:
        raise ValueError("num_experts and k_persist must be >= 1")
    if local_keep_stamps < 0:
        raise ValueError("local_keep_stamps must be >= 0")
    span = math.ceil(num_experts / min(k_persist, num_experts))
    return min(local_keep_stamps, span) / span


@dataclass(frozen=True)
class TwoTierRecoveryCost:
    """Restore cost from a two-level (local cache + remote object) store.

    Mirrors :class:`~repro.ckpt.tiered.TieredBackend`: entries still
    resident on the local tier stream back at the node's storage
    bandwidth; evicted entries are fetched from the remote object tier,
    paying its per-request latency and (narrower) bandwidth, with
    transient faults retried — a fault rate ``p`` inflates each
    request's expected attempts to ``1 / (1 - p)``, and every retry
    re-transfers its payload.  ``remote_only_seconds`` is the
    storage-only baseline (everything from remote), so the Figure 15(a)
    comparison falls out directly: two-level recovery is never slower,
    and widening local coverage drives its cost toward the local-tier
    floor while the baseline stays flat.
    """

    total_bytes: int
    local_bytes: int
    remote_bytes: int
    remote_read_ops: int
    expected_remote_attempts: float  # per-request retry multiplier
    local_seconds: float
    remote_seconds: float
    remote_only_seconds: float  # baseline: the whole restore from remote

    @property
    def recovery_seconds(self) -> float:
        """Two-level restore wall time (tiers drain sequentially)."""
        return self.local_seconds + self.remote_seconds

    @property
    def local_fraction(self) -> float:
        return self.local_bytes / self.total_bytes if self.total_bytes else 1.0

    @property
    def speedup_vs_remote_only(self) -> float:
        if self.recovery_seconds <= 0:
            return 1.0
        return self.remote_only_seconds / self.recovery_seconds


def two_tier_recovery_cost(
    spec: MoEModelSpec,
    cluster: ClusterSpec,
    local_hit_fraction: float,
    k_persist: Optional[int] = None,
    remote_bandwidth: Optional[float] = None,
    remote_latency: float = 0.05,
    remote_fault_rate: float = 0.0,
    hedge_latency_factor: float = 1.0,
) -> TwoTierRecoveryCost:
    """Cost one recovery of ``spec`` from a two-level persist tier.

    ``local_hit_fraction`` is the share of restored bytes (and read
    requests) still resident on the local tier — compute it from a
    retention policy with :func:`pec_local_hit_fraction`, or pass a
    measured value.  ``remote_bandwidth`` defaults to an order of
    magnitude below the node's storage link, the usual NVMe-vs-object
    store gap; ``hedge_latency_factor`` scales the effective remote
    latency to credit hedged reads for clipping the slow tail
    (``1.0`` = no hedging benefit, ``0.5`` = tail halved).
    """
    if not 0.0 <= local_hit_fraction <= 1.0:
        raise ValueError("local_hit_fraction must be in [0, 1]")
    if not 0.0 <= remote_fault_rate < 1.0:
        raise ValueError("remote_fault_rate must be in [0, 1)")
    if remote_latency < 0 or hedge_latency_factor < 0:
        raise ValueError("remote_latency and hedge_latency_factor must be >= 0")
    total = (
        spec.full_checkpoint_bytes()
        if k_persist is None
        else spec.pec_checkpoint_bytes(min(k_persist, spec.num_experts))
    )
    selected = spec.num_experts if k_persist is None else min(k_persist, spec.num_experts)
    entries = len(spec.non_expert_param_items()) + spec.num_moe_layers * selected * 2
    local_bandwidth = cluster.storage_bandwidth_per_node
    if remote_bandwidth is None:
        remote_bandwidth = local_bandwidth / 10.0
    if remote_bandwidth <= 0 or local_bandwidth <= 0:
        raise ValueError("bandwidths must be positive")
    local_bytes = int(round(total * local_hit_fraction))
    remote_bytes = total - local_bytes
    remote_ops = int(round(entries * (1.0 - local_hit_fraction)))
    attempts = 1.0 / (1.0 - remote_fault_rate)
    effective_latency = remote_latency * hedge_latency_factor

    def remote_seconds_for(nbytes: int, ops: int) -> float:
        # Retries re-issue the request (latency) and re-pull the payload
        # (bandwidth), so both terms carry the attempt multiplier.
        return attempts * (nbytes / remote_bandwidth + ops * effective_latency)

    return TwoTierRecoveryCost(
        total_bytes=total,
        local_bytes=local_bytes,
        remote_bytes=remote_bytes,
        remote_read_ops=remote_ops,
        expected_remote_attempts=attempts,
        local_seconds=local_bytes / local_bandwidth,
        remote_seconds=remote_seconds_for(remote_bytes, remote_ops),
        remote_only_seconds=remote_seconds_for(total, entries),
    )


@dataclass(frozen=True)
class TwoTierUploadWindow:
    """Steady-state drain model for the write-back upload pipeline.

    The remote-tier analogue of :class:`AsyncWriteWindow`: each
    checkpoint's persisted bytes land on the local tier and return, and
    the background pipeline must push them to the remote object store
    before the next checkpoint arrives — otherwise the upload backlog
    (and the window in which a local-tier loss forfeits data) grows
    without bound.
    """

    upload_seconds: float  # expected drain time for one checkpoint
    window_seconds: float  # compute time between checkpoints
    backlog_growth_bytes: int  # bytes left pending per interval (0 = keeps up)
    expected_attempts: float

    @property
    def keeps_up(self) -> bool:
        return self.backlog_growth_bytes == 0


def two_tier_upload_window(
    persist_bytes: int,
    upload_ops: int,
    iteration_seconds: float,
    checkpoint_interval: int,
    remote_bandwidth: float,
    remote_latency: float = 0.05,
    remote_fault_rate: float = 0.0,
    upload_workers: int = 1,
) -> TwoTierUploadWindow:
    """Can the upload pipeline drain a checkpoint before the next one?

    Concurrent upload workers pipeline request latency but share the
    remote link's bandwidth, mirroring the restore model; transient
    faults multiply expected attempts by ``1 / (1 - p)``.
    """
    if iteration_seconds <= 0 or checkpoint_interval < 1:
        raise ValueError("iteration_seconds/checkpoint_interval must be positive")
    if not 0.0 <= remote_fault_rate < 1.0:
        raise ValueError("remote_fault_rate must be in [0, 1)")
    if remote_bandwidth <= 0 or upload_workers < 1:
        raise ValueError("remote_bandwidth and upload_workers must be positive")
    attempts = 1.0 / (1.0 - remote_fault_rate)
    upload = attempts * (
        persist_bytes / remote_bandwidth
        + (upload_ops / upload_workers) * remote_latency
    )
    window = checkpoint_interval * iteration_seconds
    growth = 0
    if upload > window and upload > 0:
        growth = int(round(persist_bytes * (upload - window) / upload))
    return TwoTierUploadWindow(
        upload_seconds=upload,
        window_seconds=window,
        backlog_growth_bytes=growth,
        expected_attempts=attempts,
    )
