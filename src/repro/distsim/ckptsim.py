"""Per-rank checkpoint workloads and durations for a deployment.

Bridges the model spec (bytes), the sharding planner (who writes what)
and the hardware profile (how fast) into the quantities the figures
plot: bottleneck-rank checkpoint bytes (Figure 10(b-d)), snapshot and
persist durations (Figure 11), and total persisted file size
(Figure 13(f)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import ShardingPolicy
from ..core.pec import PECPlan, PECPlanner
from ..core.sharding import (
    CheckpointWorkload,
    ShardPlan,
    ShardTopology,
    plan_checkpoint_shards,
)
from .hardware import ClusterSpec
from .modelspec import B_MASTER, B_MOMENTS, B_W, MoEModelSpec


def build_workload(spec: MoEModelSpec) -> CheckpointWorkload:
    """Translate a model spec into the sharding planner's byte inputs."""
    return CheckpointWorkload(
        non_expert_param_items=spec.non_expert_param_items(),
        expert_param_bytes=spec.expert_params * B_W,
        num_moe_layers=spec.num_moe_layers,
        num_experts=spec.num_experts,
        non_expert_master_bytes=spec.non_expert_params * B_MASTER,
        non_expert_moment_bytes=spec.non_expert_params * B_MOMENTS,
        expert_master_bytes=spec.expert_params * B_MASTER,
        expert_moment_bytes=spec.expert_params * B_MOMENTS,
        other_bytes=spec.other_state_bytes,
    )


@dataclass(frozen=True)
class CheckpointCost:
    """One checkpoint's cost under a given plan + hardware."""

    plan: ShardPlan
    bottleneck_rank_bytes: int
    total_bytes: int
    bottleneck_node_bytes: int
    snapshot_seconds: float  # bottleneck rank GPU->CPU
    persist_seconds: float  # bottleneck node CPU->storage


def checkpoint_cost(
    spec: MoEModelSpec,
    topology: ShardTopology,
    cluster: ClusterSpec,
    policy: ShardingPolicy,
    pec_plan: Optional[PECPlan] = None,
) -> CheckpointCost:
    """Cost of one checkpointing process for a deployment.

    Snapshot time is governed by the rank with the largest assignment
    (PCIe is per-GPU); persist time by the node with the largest
    aggregate (the node's storage link is shared by its ranks).
    """
    workload = build_workload(spec)
    plan = plan_checkpoint_shards(topology, workload, policy, pec_plan=pec_plan)
    bottleneck = plan.bottleneck_bytes()
    node_bytes = [plan.node_bytes(node) for node in range(topology.num_nodes)]
    bottleneck_node = max(node_bytes) if node_bytes else 0
    return CheckpointCost(
        plan=plan,
        bottleneck_rank_bytes=bottleneck,
        total_bytes=plan.total_bytes(),
        bottleneck_node_bytes=bottleneck_node,
        snapshot_seconds=bottleneck / cluster.gpu.d2h_bandwidth,
        persist_seconds=bottleneck_node / cluster.storage_bandwidth_per_node,
    )


def pec_plan_for(
    spec: MoEModelSpec,
    k_snapshot: int,
    k_persist: Optional[int] = None,
    checkpoint_index: int = 0,
    apply_to_weights: bool = True,
    apply_to_moments: bool = True,
) -> PECPlan:
    """Convenience: a sequential-selection PEC plan for a model spec."""
    from ..core.config import PECConfig

    k_persist = k_snapshot if k_persist is None else k_persist
    config = PECConfig(
        k_snapshot=min(k_snapshot, spec.num_experts),
        k_persist=min(k_persist, spec.num_experts),
        apply_to_weights=apply_to_weights,
        apply_to_moments=apply_to_moments,
    )
    planner = PECPlanner(config, spec.num_moe_layers, spec.num_experts)
    return planner.plan(checkpoint_index)


@dataclass(frozen=True)
class AsyncWriteWindow:
    """Overlap model for the double-buffered persist pipeline.

    Mirrors :class:`~repro.ckpt.async_writer.AsyncWriteBackend`: once a
    checkpoint's entries are staged, the write drains during subsequent
    training compute.  With ``queue_depth`` checkpoints' worth of staging
    buffers, a persist may keep draining until the buffer is needed again
    — ``queue_depth * checkpoint_interval`` iterations later.  Whatever
    does not fit in that window stalls the training loop.
    """

    window_seconds: float  # compute time available to hide the persist
    stall_seconds: float  # residual blocking time per checkpoint
    hidden_fraction: float  # share of the persist hidden under compute

    @property
    def fully_overlapped(self) -> bool:
        return self.stall_seconds == 0.0


def overlapped_write_window(
    persist_seconds: float,
    iteration_seconds: float,
    checkpoint_interval: int,
    queue_depth: int = 2,
) -> AsyncWriteWindow:
    """Stall per checkpoint under the async double-buffered pipeline.

    ``persist_seconds`` is the synchronous persist duration (e.g.
    :attr:`CheckpointCost.persist_seconds`); the returned stall is what
    remains after overlapping it with ``queue_depth`` checkpoint
    intervals of compute.
    """
    if iteration_seconds <= 0:
        raise ValueError("iteration_seconds must be positive")
    if checkpoint_interval < 1 or queue_depth < 1:
        raise ValueError("checkpoint_interval and queue_depth must be >= 1")
    window = queue_depth * checkpoint_interval * iteration_seconds
    stall = max(0.0, persist_seconds - window)
    hidden = 1.0 if persist_seconds <= 0 else (persist_seconds - stall) / persist_seconds
    return AsyncWriteWindow(
        window_seconds=window, stall_seconds=stall, hidden_fraction=hidden
    )


def persist_file_bytes(
    spec: MoEModelSpec, topology: ShardTopology, k_persist: Optional[int] = None
) -> int:
    """Total bytes landing on the cluster filesystem per checkpoint.

    ``k_persist=None`` means full saving.  Used for Figure 13(f)'s
    Base-Persist vs MoC-Persist comparison.
    """
    if k_persist is None:
        return spec.full_checkpoint_bytes()
    return spec.pec_checkpoint_bytes(k_persist)
