"""Per-rank checkpoint workloads and durations for a deployment.

Bridges the model spec (bytes), the sharding planner (who writes what)
and the hardware profile (how fast) into the quantities the figures
plot: bottleneck-rank checkpoint bytes (Figure 10(b-d)), snapshot and
persist durations (Figure 11), and total persisted file size
(Figure 13(f)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import ShardingPolicy
from ..core.pec import PECPlan, PECPlanner
from ..core.sharding import (
    CheckpointWorkload,
    ShardPlan,
    ShardTopology,
    plan_checkpoint_shards,
)
from .hardware import ClusterSpec
from .modelspec import B_MASTER, B_MOMENTS, B_W, MoEModelSpec


def build_workload(spec: MoEModelSpec) -> CheckpointWorkload:
    """Translate a model spec into the sharding planner's byte inputs."""
    return CheckpointWorkload(
        non_expert_param_items=spec.non_expert_param_items(),
        expert_param_bytes=spec.expert_params * B_W,
        num_moe_layers=spec.num_moe_layers,
        num_experts=spec.num_experts,
        non_expert_master_bytes=spec.non_expert_params * B_MASTER,
        non_expert_moment_bytes=spec.non_expert_params * B_MOMENTS,
        expert_master_bytes=spec.expert_params * B_MASTER,
        expert_moment_bytes=spec.expert_params * B_MOMENTS,
        other_bytes=spec.other_state_bytes,
    )


@dataclass(frozen=True)
class CheckpointCost:
    """One checkpoint's cost under a given plan + hardware."""

    plan: ShardPlan
    bottleneck_rank_bytes: int
    total_bytes: int
    bottleneck_node_bytes: int
    snapshot_seconds: float  # bottleneck rank GPU->CPU
    persist_seconds: float  # bottleneck node CPU->storage


def checkpoint_cost(
    spec: MoEModelSpec,
    topology: ShardTopology,
    cluster: ClusterSpec,
    policy: ShardingPolicy,
    pec_plan: Optional[PECPlan] = None,
) -> CheckpointCost:
    """Cost of one checkpointing process for a deployment.

    Snapshot time is governed by the rank with the largest assignment
    (PCIe is per-GPU); persist time by the node with the largest
    aggregate (the node's storage link is shared by its ranks).
    """
    workload = build_workload(spec)
    plan = plan_checkpoint_shards(topology, workload, policy, pec_plan=pec_plan)
    bottleneck = plan.bottleneck_bytes()
    node_bytes = [plan.node_bytes(node) for node in range(topology.num_nodes)]
    bottleneck_node = max(node_bytes) if node_bytes else 0
    return CheckpointCost(
        plan=plan,
        bottleneck_rank_bytes=bottleneck,
        total_bytes=plan.total_bytes(),
        bottleneck_node_bytes=bottleneck_node,
        snapshot_seconds=bottleneck / cluster.gpu.d2h_bandwidth,
        persist_seconds=bottleneck_node / cluster.storage_bandwidth_per_node,
    )


def pec_plan_for(
    spec: MoEModelSpec,
    k_snapshot: int,
    k_persist: Optional[int] = None,
    checkpoint_index: int = 0,
    apply_to_weights: bool = True,
    apply_to_moments: bool = True,
) -> PECPlan:
    """Convenience: a sequential-selection PEC plan for a model spec."""
    from ..core.config import PECConfig

    k_persist = k_snapshot if k_persist is None else k_persist
    config = PECConfig(
        k_snapshot=min(k_snapshot, spec.num_experts),
        k_persist=min(k_persist, spec.num_experts),
        apply_to_weights=apply_to_weights,
        apply_to_moments=apply_to_moments,
    )
    planner = PECPlanner(config, spec.num_moe_layers, spec.num_experts)
    return planner.plan(checkpoint_index)


@dataclass(frozen=True)
class AsyncWriteWindow:
    """Overlap model for the double-buffered persist pipeline.

    Mirrors :class:`~repro.ckpt.async_writer.AsyncWriteBackend`: once a
    checkpoint's entries are staged, the write drains during subsequent
    training compute.  With ``queue_depth`` checkpoints' worth of staging
    buffers, a persist may keep draining until the buffer is needed again
    — ``queue_depth * checkpoint_interval`` iterations later.  Whatever
    does not fit in that window stalls the training loop.
    """

    window_seconds: float  # compute time available to hide the persist
    stall_seconds: float  # residual blocking time per checkpoint
    hidden_fraction: float  # share of the persist hidden under compute

    @property
    def fully_overlapped(self) -> bool:
        return self.stall_seconds == 0.0


def overlapped_write_window(
    persist_seconds: float,
    iteration_seconds: float,
    checkpoint_interval: int,
    queue_depth: int = 2,
) -> AsyncWriteWindow:
    """Stall per checkpoint under the async double-buffered pipeline.

    ``persist_seconds`` is the synchronous persist duration (e.g.
    :attr:`CheckpointCost.persist_seconds`); the returned stall is what
    remains after overlapping it with ``queue_depth`` checkpoint
    intervals of compute.
    """
    if iteration_seconds <= 0:
        raise ValueError("iteration_seconds must be positive")
    if checkpoint_interval < 1 or queue_depth < 1:
        raise ValueError("checkpoint_interval and queue_depth must be >= 1")
    window = queue_depth * checkpoint_interval * iteration_seconds
    stall = max(0.0, persist_seconds - window)
    hidden = 1.0 if persist_seconds <= 0 else (persist_seconds - stall) / persist_seconds
    return AsyncWriteWindow(
        window_seconds=window, stall_seconds=stall, hidden_fraction=hidden
    )


@dataclass(frozen=True)
class ReshardRecoveryCost:
    """Restore cost when the resume topology differs from the save one.

    Mirrors :mod:`repro.core.reshard` + the parallel restore pipeline:
    every persisted byte must be read back; ZeRO-2 optimizer partitions
    are re-sliced (misaligned partition boundaries split reads into
    extra segments); the parallel pipeline lets every target node drain
    its share concurrently while a serial restore funnels everything
    through one reader.
    """

    source: ShardTopology
    target: ShardTopology
    total_bytes: int
    bottleneck_rank_bytes: int
    read_ops: int  # entry reads + re-slice segments
    serial_seconds: float  # one reader drains everything
    parallel_seconds: float  # per-node concurrent readers

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.parallel_seconds if self.parallel_seconds > 0 else 1.0


def partition_overlap_segments(source_parts: int, target_parts: int) -> int:
    """Contiguous (source, target) overlap pairs when one byte range is
    equally partitioned two ways: ``S + T - gcd(S, T)``.

    Each pair is one read segment a re-slicing target rank must issue;
    aligned repartitions (``T`` divides ``S`` or vice versa) reduce to
    ``max(S, T)`` segments, the no-amplification case.
    """
    import math

    if source_parts < 1 or target_parts < 1:
        raise ValueError("partition counts must be >= 1")
    return source_parts + target_parts - math.gcd(source_parts, target_parts)


def reshard_recovery_cost(
    spec: MoEModelSpec,
    source: ShardTopology,
    target: ShardTopology,
    cluster: ClusterSpec,
    k_persist: Optional[int] = None,
    read_op_latency: float = 5e-4,
) -> ReshardRecoveryCost:
    """Cost one resharded restore of ``spec`` saved under ``source``.

    ``read_op_latency`` models the per-read round trip of a networked
    persist tier; bandwidth comes from the cluster's per-node storage
    link.  Serial restore pays every op's latency back to back; the
    parallel pipeline overlaps latency across a node's concurrent
    readers and lets nodes drain their byte shares simultaneously.
    """
    if spec.num_experts % target.d_ep != 0:
        raise ValueError(
            f"cannot reshard to d_ep={target.d_ep}: num_experts="
            f"{spec.num_experts} is not divisible by it"
        )
    total = persist_file_bytes(spec, source, k_persist)
    ranks = target.num_ranks
    per_rank = (total + ranks - 1) // ranks  # balanced re-slice
    selected = spec.num_experts if k_persist is None else min(k_persist, spec.num_experts)
    expert_entries = spec.num_moe_layers * selected * 2  # weights + optimizer
    ne_entries = len(spec.non_expert_param_items())
    reslice_segments = partition_overlap_segments(source.num_ranks, target.num_ranks)
    read_ops = ne_entries + expert_entries + reslice_segments

    bandwidth = cluster.storage_bandwidth_per_node
    serial = total / bandwidth + read_ops * read_op_latency
    nodes = target.num_nodes
    ranks_per_node = min(target.gpus_per_node, ranks)
    # A node never reads more than the checkpoint holds (the per-rank
    # ceil rounding would otherwise overshoot on a single node).
    bottleneck_node_bytes = min(per_rank * ranks_per_node, total)
    ops_per_node = (read_ops + nodes - 1) // nodes
    # Within a node, concurrent readers pipeline their request latency
    # while sharing the storage link's bandwidth.
    parallel = bottleneck_node_bytes / bandwidth + (
        ops_per_node / max(ranks_per_node, 1)
    ) * read_op_latency
    return ReshardRecoveryCost(
        source=source,
        target=target,
        total_bytes=total,
        bottleneck_rank_bytes=per_rank,
        read_ops=read_ops,
        serial_seconds=serial,
        parallel_seconds=parallel,
    )


@dataclass(frozen=True)
class DedupWriteCost:
    """Persisted-bytes-per-checkpoint model under chunk reuse.

    Mirrors :class:`~repro.ckpt.dedup.DedupBackend`: a PEC checkpoint
    accepts ``logical_bytes`` of serialized entries, but only chunks
    whose content changed since their last persisted version hit
    storage.  Whole-entry reuse (delta saves skipping untouched
    experts) removes bytes *and* manifest metadata; partial change
    dirties whole chunks (a single changed byte re-writes its chunk),
    which is the granularity tax ``chunk_bytes`` trades against
    manifest overhead (one digest per chunk, every save).
    """

    logical_bytes: int  # serialized bytes the checkpoint accepts
    unique_bytes: int  # novel chunk bytes written to storage
    manifest_bytes: int  # digest-list metadata journaled per save
    chunk_bytes: int
    chunks_referenced: int
    chunks_written: int

    @property
    def persisted_bytes(self) -> int:
        """What actually lands on storage for one checkpoint."""
        return self.unique_bytes + self.manifest_bytes

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes per persisted byte (>= 1 under reuse)."""
        if self.persisted_bytes <= 0:
            return 1.0
        return self.logical_bytes / self.persisted_bytes


def dedup_write_cost(
    spec: MoEModelSpec,
    k_persist: Optional[int] = None,
    chunk_bytes: int = 64 * 1024,
    changed_chunk_fraction: float = 1.0,
    unchanged_entry_fraction: float = 0.0,
    digest_bytes: int = 32,
) -> DedupWriteCost:
    """Steady-state persisted bytes for one PEC+dedup checkpoint.

    ``unchanged_entry_fraction`` is the share of the selected payload
    whose entries are bit-identical to their last persisted version
    (untouched experts under sparse routing, frozen layers): the
    manager's delta-save check drops them before serialization, so
    they cost neither chunks nor manifest digests.  Of the remaining
    bytes, ``changed_chunk_fraction`` of the chunks are dirty — a
    changed byte dirties its whole chunk, so this is a *chunk*-level
    fraction.  ``digest_bytes`` prices the manifest journal (one
    SHA-256 per referenced chunk, re-journaled every save).
    """
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    if not 0.0 <= changed_chunk_fraction <= 1.0:
        raise ValueError("changed_chunk_fraction must be in [0, 1]")
    if not 0.0 <= unchanged_entry_fraction <= 1.0:
        raise ValueError("unchanged_entry_fraction must be in [0, 1]")
    if digest_bytes < 0:
        raise ValueError("digest_bytes must be >= 0")
    logical = (
        spec.full_checkpoint_bytes()
        if k_persist is None
        else spec.pec_checkpoint_bytes(min(k_persist, spec.num_experts))
    )
    import math

    delta_logical = int(round(logical * (1.0 - unchanged_entry_fraction)))
    chunks_referenced = math.ceil(delta_logical / chunk_bytes) if delta_logical else 0
    chunks_written = math.ceil(chunks_referenced * changed_chunk_fraction)
    unique = min(chunks_written * chunk_bytes, delta_logical)
    return DedupWriteCost(
        logical_bytes=logical,
        unique_bytes=unique,
        manifest_bytes=chunks_referenced * digest_bytes,
        chunk_bytes=chunk_bytes,
        chunks_referenced=chunks_referenced,
        chunks_written=chunks_written,
    )


def persist_file_bytes(
    spec: MoEModelSpec, topology: ShardTopology, k_persist: Optional[int] = None
) -> int:
    """Total bytes landing on the cluster filesystem per checkpoint.

    ``k_persist=None`` means full saving.  Used for Figure 13(f)'s
    Base-Persist vs MoC-Persist comparison.
    """
    if k_persist is None:
        return spec.full_checkpoint_bytes()
    return spec.pec_checkpoint_bytes(k_persist)
