"""Command-line interface: ``moc-repro <command>``.

Commands
--------
``size``      checkpoint-size arithmetic for a model spec (Figure 10(a))
``plan``      adaptive two-level PEC configuration for a deployment
              (Section 5.3)
``simulate``  async-checkpoint timeline for given durations (Figure 11/12
              mechanics)
``demo``      a 60-iteration training run with a midpoint fault and PEC
              recovery on the numpy substrate
``gc``        reclaim zero-ref chunks in a dedup (or tiered) checkpoint
              directory
``fsck``      verify chunk hashes, manifests and refcounts of a dedup
              checkpoint directory — or, for a tiered root, both tiers
              plus the promotion journal (non-zero exit on errors)
``stats``     summarize a Chrome trace-event JSON exported by
              ``demo --trace`` — per-span wall/percentiles and counter
              high-water marks (non-zero exit on an invalid trace)
``chaos``     fault-injection campaigns against the live storage stack:
              ``chaos run`` executes a seeded campaign (non-zero exit,
              with seeds and a repro command, on any unrecoverable
              run), ``chaos replay`` replays a recorded or synthetic
              fault trace through the long-run simulator with and
              without the online adaptive controller, and ``chaos
              report`` renders a saved campaign report

All commands print fixed-width tables and return 0 on success (``fsck``
returns 1 when it finds integrity errors), making them scriptable;
``main`` accepts an ``argv`` list for testing.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from .analysis import render_kv, render_table


def _cmd_size(args: argparse.Namespace) -> int:
    from .distsim import GB, gpt_125m_8e, gpt_350m_16e, llama_moe

    if args.model == "gpt-350m-16e":
        spec = gpt_350m_16e()
    elif args.model == "gpt-125m-8e":
        spec = gpt_125m_8e()
    else:
        spec = llama_moe(num_experts=args.experts, hidden=args.hidden)
    full = spec.full_checkpoint_bytes()
    rows = []
    k = spec.num_experts
    while k >= 1:
        size = spec.pec_checkpoint_bytes(k)
        rows.append((k, size / GB, 100.0 * size / full))
        k //= 2
    print(render_kv(
        f"{spec.name}",
        [
            ("total params (B)", spec.total_params / 1e9),
            ("expert fraction", spec.expert_fraction),
            ("full checkpoint (GB)", full / GB),
        ],
    ))
    print(render_table(["K_pec", "size GB", "% of full"], rows, precision=1))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .core import recommend_for_deployment
    from .distsim import A800_CLUSTER, H100_CLUSTER, Deployment, ParallelConfig, llama_moe

    cluster = H100_CLUSTER if args.gpu == "h100" else A800_CLUSTER
    spec = llama_moe(num_experts=args.gpus)
    deployment = Deployment(
        name="cli",
        spec=spec,
        parallel=ParallelConfig(d_dp=args.gpus, d_ep=args.gpus,
                                tokens_per_gpu=args.tokens_per_gpu),
        cluster=cluster,
    )
    iteration_seconds = deployment.iteration_times().total
    fault_rate = iteration_seconds / (args.mtbf_hours * 3600.0)
    plan = recommend_for_deployment(deployment, fault_rate)
    print(render_kv(
        f"Adaptive plan for {spec.name} on {args.gpus}x{cluster.gpu.name}",
        [
            ("iteration time (s)", iteration_seconds),
            ("K_snapshot", plan.k_snapshot),
            ("K_persist", plan.k_persist),
            ("snapshot (s)", plan.snapshot_seconds),
            ("persist (s)", plan.persist_seconds),
            ("fully overlapped", str(plan.fully_overlapped)),
            ("recommended I_ckpt (iters)", plan.checkpoint_interval),
        ],
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .distsim import TimelineConfig, simulate_timeline

    results = {}
    for mode in ("blocking", "async"):
        results[mode] = simulate_timeline(
            TimelineConfig(
                t_fb=args.fb, t_update=args.update, t_snapshot=args.snapshot,
                t_persist=args.persist, num_iterations=args.iterations,
                checkpoint_interval=args.interval, mode=mode,
            )
        )
    rows = [
        (
            mode,
            result.total_time,
            result.checkpoint_iteration_time,
            result.o_save,
            result.checkpoints_started,
            result.deferred_attempts,
        )
        for mode, result in results.items()
    ]
    print(render_table(
        ["mode", "total s", "ckpt-iter s", "O_save s", "ckpts", "deferred"],
        rows, precision=2,
    ))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from .ckpt import AsyncWriteBackend, make_backend
    from .core import (
        MoCConfig,
        MoCCheckpointManager,
        PECConfig,
        TwoLevelConfig,
        grid_topology,
    )
    from .io import (
        DEFAULT_IO_BYTE_BUDGET,
        DEFAULT_IO_WORKERS,
        QoS,
        configure_scheduler,
        get_scheduler,
    )
    from .models import Adam, MoEModelConfig, MoETransformerLM
    from .obs import Observer, get_registry, get_tracer
    from .train import FaultSchedule, MarkovCorpus, Trainer, TrainerConfig

    if (args.io_workers is not None or args.io_byte_budget is not None
            or args.io_rate):
        rate_limits = {}
        for spec in args.io_rate or []:
            name, _, rest = spec.partition("=")
            try:
                qos = QoS[name.strip().upper()]
                rate, _, burst = rest.partition(":")
                rate_limits[qos] = (
                    float(rate), float(burst) if burst else max(1.0, float(rate))
                )
            except (KeyError, ValueError):
                print(f"error: bad --io-rate {spec!r} (want "
                      "CLASS=RATE[:BURST])", file=sys.stderr)
                return 2
        if args.io_byte_budget is None:
            byte_budget = DEFAULT_IO_BYTE_BUDGET
        elif args.io_byte_budget <= 0:
            byte_budget = None
        else:
            byte_budget = args.io_byte_budget * (1 << 20)
        configure_scheduler(
            workers=args.io_workers
            if args.io_workers is not None else DEFAULT_IO_WORKERS,
            byte_budget=byte_budget,
            rate_limits=rate_limits or None,
        )

    model_config = MoEModelConfig(
        vocab_size=48, max_seq_len=16, dim=16, num_layers=2, num_heads=2,
        num_experts=args.experts, top_k=2, seed=0,
    )
    model = MoETransformerLM(model_config)
    optimizer = Adam(model.named_parameters(), lr=3e-3)
    corpus = MarkovCorpus(vocab_size=48, num_domains=2, seq_len=16, seed=1)
    config = MoCConfig(
        pec=PECConfig(k_snapshot=min(2, args.experts), k_persist=1),
        two_level=TwoLevelConfig(checkpoint_interval=args.interval),
    )
    topology = grid_topology(args.dp, args.ep, gpus_per_node=args.gpus_per_node)
    resharding = args.resume_dp is not None or args.resume_ep is not None
    dedup = args.backend == "dedup"
    tiered = args.backend == "tiered"
    if (args.codec is not None or args.parallel_workers) and not (dedup or tiered):
        print("error: --codec/--parallel-workers require --backend dedup "
              "or tiered", file=sys.stderr)
        return 2
    if (args.remote_latency or args.remote_fault_rate
            or args.local_keep is not None) and not tiered:
        print("error: --remote-latency/--remote-fault-rate/--local-keep "
              "require --backend tiered", file=sys.stderr)
        return 2
    # One run-scoped observer: the manager's pipeline meters and the
    # tiered backend's upload/fault counters all land on this registry,
    # so ``--metrics-dump`` reads every pinned invariant from one place.
    # Spans always flow to the process tracer; ``--trace`` switches it
    # on (disabled tracing is a shared no-op span — near-zero cost).
    observer = Observer(tracer=get_tracer())
    if args.trace:
        observer.tracer.reset()
        observer.tracer.enable()
    rows = []
    restore_profiles = []
    with tempfile.TemporaryDirectory() as storage:
        store = make_backend(
            args.backend, storage,
            codec=args.codec, parallel_workers=args.parallel_workers,
            remote_latency=args.remote_latency,
            remote_fault_rate=args.remote_fault_rate,
            upload_workers=args.upload_workers,
            local_keep_stamps=args.local_keep,
            hedge_after_seconds=args.hedge_after,
            registry=observer.registry,
        )
        if args.async_writes:
            # Share the chunk engine's shared-memory staging pool (when
            # one exists) so async staging copies land worker-visible.
            store = AsyncWriteBackend(
                store, staging_pool=getattr(store, "staging_pool", None)
            )
        manager = MoCCheckpointManager(
            model, optimizer, config, disk_store=store, topology=topology,
            # Delta saves are the dedup tier's natural companion: an
            # unchanged selected entry costs zero bytes end to end.  The
            # tiered backend's local tier is a dedup store, so it
            # benefits identically.
            delta_saves=dedup or tiered,
            observer=observer,
        )
        trainer = Trainer(
            model, optimizer, corpus,
            TrainerConfig(total_iterations=args.iterations, batch_size=2),
            manager=manager,
            fault_schedule=FaultSchedule.midpoint(args.iterations),
        )
        history = trainer.run()
        rows = [
            ("backend", args.backend + (" (async)" if args.async_writes else "")),
            ("save topology", f"DP={args.dp} EP={args.ep}"),
            ("iterations (with replay)", history.executed_iterations),
            ("fault at", history.fault_iterations[0]),
            ("resumed from", history.recoveries[0].resume_iteration),
            ("PLT %", 100 * history.final_plt),
            ("final train loss", history.train_losses[args.iterations]),
        ]
        if resharding:
            target = grid_topology(
                args.resume_dp if args.resume_dp is not None else args.dp,
                args.resume_ep if args.resume_ep is not None else args.ep,
                gpus_per_node=args.gpus_per_node,
            )

            def resumed_params(restore_topology, workers):
                fresh = MoETransformerLM(model_config)
                fresh_opt = Adam(fresh.named_parameters(), lr=3e-3)
                fresh_manager = MoCCheckpointManager(
                    fresh, fresh_opt, config, disk_store=store,
                    topology=restore_topology, observer=observer,
                )
                result = fresh_manager.restore(
                    topology=restore_topology, workers=workers
                )
                return fresh, result

            resharded, result = resumed_params(target, args.restore_workers)
            reference, _ = resumed_params(topology, 1)
            bit_exact = all(
                np.array_equal(a.data, b.data)
                for (_, a), (_, b) in zip(
                    sorted(resharded.named_parameters()),
                    sorted(reference.named_parameters()),
                )
            )
            reshard = result.reshard
            rows.extend([
                ("resume topology", f"DP={target.num_ep_groups} EP={target.d_ep}"),
                ("resharded resume from", result.resume_iteration),
                ("moved experts", len(reshard.moved_experts)),
                ("persist-tier fallbacks", len(reshard.fallback_experts)),
                ("entries read", result.restore_stats.entries),
                ("restore workers", result.restore_stats.workers),
                ("restore wall ms", 1e3 * result.restore_stats.wall_seconds),
                ("read imbalance (bottleneck/mean)", reshard.imbalance()),
                ("matches source-topology restore", str(bit_exact)),
            ])
        profile_rows = []
        meters = manager.pipeline_meters
        if args.profile:
            recovery_stats = history.recoveries[0].restore_stats
            if recovery_stats is not None and recovery_stats.profile is not None:
                restore_profiles.append(("fault recovery", recovery_stats))
            if resharding and result.restore_stats is not None \
                    and result.restore_stats.profile is not None:
                restore_profiles.append(("resharded restore", result.restore_stats))
            profile_rows = [
                (
                    prof.iteration,
                    1e3 * prof.wall_seconds,
                    prof.persist_entries,
                    prof.persist_skipped,
                    prof.bytes_serialized / 1024.0,
                    prof.hash_passes,
                    prof.copy_passes,
                    prof.compression_passes,
                    prof.storage_ratio,
                )
                for prof in manager.save_profile
            ]
        if dedup or tiered:
            manager.flush()
            inner = store.inner if args.async_writes else store
            # The chunk-level stats live on the dedup store; for the
            # tiered backend that is its local tier.
            chunk_store = inner.local if tiered else inner
            skipped = sum(len(m.persist_skipped) for m in manager.manifests)
            gc_report = inner.gc()
            fsck_report = inner.fsck()
            local_gc = gc_report.local_report if tiered else gc_report
            local_fsck = fsck_report.local_report if tiered else fsck_report
            logical = inner.bytes_written
            physical = chunk_store.chunks.chunk_bytes_written
            rows.extend([
                ("delta-skipped entries", skipped),
                ("logical bytes accepted", logical),
                ("unique chunk bytes written", physical),
                ("dedup ratio (logical/physical)",
                 logical / physical if physical else 1.0),
                ("gc reclaimed chunks", local_gc.reclaimed_chunks),
                ("gc reclaimed bytes", local_gc.reclaimed_bytes),
                ("fsck errors", len(fsck_report.errors)),
            ])
            if tiered:
                stats = inner.tier_stats()
                rows.extend([
                    ("remote uploads", stats["uploads_completed"]),
                    ("upload retries", stats["upload_retries"]),
                    ("remote faults injected", stats["remote_faults"]),
                    ("pending uploads", stats["pending_uploads"]),
                    ("local demotions", stats["demotions"]),
                    ("read promotions", stats["promotions"]),
                    ("local keys / remote claims",
                     f"{stats['local_keys']} / {stats['remote_claims']}"),
                ])
            if args.codec is not None or args.parallel_workers:
                total = meters.snapshot()
                engine = chunk_store.engine
                rows.extend([
                    ("chunk codec",
                     chunk_store.codec.spec()["name"]
                     if chunk_store.codec is not None else "none"),
                    ("parallel workers",
                     engine.workers if engine is not None and engine.enabled
                     else 0),
                    ("encoded chunks", local_fsck.encoded_chunks),
                    ("compression ratio (enc/raw)",
                     total["bytes_compressed_out"] / total["bytes_compressed"]
                     if total["bytes_compressed"] else 1.0),
                ])
        manager.close()
    print(render_kv("demo run", rows))
    if args.profile:
        # Per-save pipeline breakdown: wall time plus the byte meters —
        # "hash x" / "copy x" / "comp x" are hash passes, staging copies
        # and compression passes per serialized payload byte (hash 1.0,
        # copy 0.0/1.0 sync/async, comp ≤ 1.0; anything higher is a
        # regression).  "store x" is the combined precision x compression
        # shrink of that save's persisted bytes.
        print(render_table(
            ["save @iter", "save ms", "entries", "skipped",
             "KiB serialized", "hash x", "copy x", "comp x", "store x"],
            profile_rows, precision=2,
        ))
        total = meters.snapshot()
        print(render_kv("save pipeline totals", [
            ("entries serialized", total["entries_serialized"]),
            ("bytes serialized", total["bytes_serialized"]),
            ("bytes hashed", total["bytes_hashed"]),
            ("bytes copied (staging)", total["bytes_copied"]),
            ("bytes compressed (raw in)", total["bytes_compressed"]),
            ("bytes compressed (enc out)", total["bytes_compressed_out"]),
            ("bytes uploaded (remote tier)", total["bytes_uploaded"]),
            ("upload retries", total["upload_retries"]),
            ("hash passes / byte",
             total["bytes_hashed"] / total["bytes_serialized"]
             if total["bytes_serialized"] else 0.0),
            ("staging copies / byte",
             total["bytes_copied"] / total["bytes_serialized"]
             if total["bytes_serialized"] else 0.0),
            ("compression passes / byte",
             total["bytes_compressed"] / total["bytes_serialized"]
             if total["bytes_serialized"] else 0.0),
        ]))
        # Read-side parity: per-lane restore breakdown (entries, bytes,
        # busy vs. stall — stall is lane wall time spent waiting for
        # work rather than reading).
        for label, stats in restore_profiles:
            print(render_table(
                [f"{label} lane", "entries", "KiB read", "busy ms", "stall ms"],
                [
                    (
                        lane.lane,
                        lane.entries,
                        lane.payload_bytes / 1024.0,
                        1e3 * lane.busy_seconds,
                        1e3 * lane.stall_seconds,
                    )
                    for lane in stats.profile.lanes
                ],
                precision=2,
            ))
        # Shared I/O scheduler: per-QoS-class dispatch columns.  Every
        # former private pool (async saves, restore reads, tier uploads,
        # gc) submits through these classes, so the table is the one
        # place contention between them is visible.
        print(render_table(
            ["io class", "submitted", "done", "failed", "cancelled",
             "aged", "peak depth", "wait ms avg", "run ms avg"],
            [
                (
                    label,
                    c["submitted"],
                    c["completed"],
                    c["failed"],
                    c["cancelled"],
                    c["aged"],
                    c["depth_highwater"],
                    1e3 * c["wait_seconds_sum"] / c["wait_count"]
                    if c["wait_count"] else 0.0,
                    1e3 * c["run_seconds_sum"] / c["run_count"]
                    if c["run_count"] else 0.0,
                )
                for label, c in get_scheduler().stats().items()
            ],
            precision=2,
        ))
    if args.trace:
        exported = observer.tracer.export(args.trace)
        observer.tracer.disable()
        print(render_kv("trace", [
            ("events", len(exported["traceEvents"])),
            ("path", args.trace),
        ]))
    if args.metrics_dump:
        # Run-scoped registry first (meters + tier counters — exact for
        # this run), then the process-wide registry holding the module
        # seams (async queue depth, journal appends, worker pool); the
        # latter accumulates across runs in one process.
        print("# ---- run registry ----")
        print(observer.registry.render_prometheus(), end="")
        print("# ---- process registry ----")
        print(get_registry().render_prometheus(), end="")
    return 0


def _open_checkpoint_store(root: str):
    """Open an *existing* dedup or tiered checkpoint directory.

    Constructing the backend would happily create an empty store at any
    path — and an fsck of a typo'd ``--root`` would then report a brand
    new empty store as "clean".  Require the store's on-disk markers
    instead, and return None (caller prints the error, exits non-zero).
    """
    import os

    from .ckpt import DedupBackend, is_tiered_root, open_tiered_root

    if is_tiered_root(root):
        return open_tiered_root(root)
    markers = (os.path.join(root, "manifests.jsonl"), os.path.join(root, "chunks"))
    if not any(os.path.exists(marker) for marker in markers):
        print(f"error: {root!r} is not a dedup or tiered checkpoint "
              "directory (no manifests.jsonl, chunks/ or tier.jsonl)",
              file=sys.stderr)
        return None
    return DedupBackend(root)


def _cmd_gc(args: argparse.Namespace) -> int:
    from .ckpt import TieredGCReport

    store = _open_checkpoint_store(args.root)
    if store is None:
        return 2
    report = store.gc()
    if isinstance(report, TieredGCReport):
        local = report.local_report
        rows = [
            ("remote keys reclaimed", report.remote_keys_reclaimed),
            ("remote bytes reclaimed", report.remote_bytes_reclaimed),
            ("journal records compacted", report.journal_records_compacted),
            ("local reclaimed chunks", local.reclaimed_chunks),
            ("local reclaimed bytes", local.reclaimed_bytes),
            ("local live chunks", local.live_chunks),
            ("local live bytes", local.live_bytes),
        ]
    else:
        rows = [
            ("reclaimed chunks", report.reclaimed_chunks),
            ("reclaimed bytes", report.reclaimed_bytes),
            ("live chunks", report.live_chunks),
            ("live bytes", report.live_bytes),
        ]
    print(render_kv(f"gc {args.root}", rows))
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from .ckpt import TieredFsckReport

    store = _open_checkpoint_store(args.root)
    if store is None:
        return 2
    report = store.fsck(repair=args.repair)
    if isinstance(report, TieredFsckReport):
        local = report.local_report
        rows = [
            ("keys checked", report.keys_checked),
            ("remote claims checked", report.claims_checked),
            ("lost remote copies", len(report.lost_remote_copies)),
            ("stale remote copies", len(report.stale_remote_copies)),
            ("pending uploads (warning)", len(report.pending_uploads)),
            ("orphan remote keys (warning)", len(report.orphan_remote_keys)),
            ("local chunks checked",
             local.chunks_checked if local is not None else 0),
            ("local corrupt chunks",
             len(local.corrupt_chunks) if local is not None else 0),
            ("local missing chunks",
             len(local.missing_chunks) if local is not None else 0),
            ("repaired", str(report.repaired)),
            ("status", "clean" if report.ok else "ERRORS"),
        ]
    else:
        rows = [
            ("chunks checked", report.chunks_checked),
            ("encoded chunks", report.encoded_chunks),
            ("manifests checked", report.manifests_checked),
            ("corrupt chunks", len(report.corrupt_chunks)),
            ("missing chunks", len(report.missing_chunks)),
            ("refcount underflows", len(report.undercounted_refs)),
            ("orphan chunks (warning)", len(report.orphan_chunks)),
            ("refcount leaks (warning)", len(report.overcounted_refs)),
            ("repaired", str(report.repaired)),
            ("status", "clean" if report.ok else "ERRORS"),
        ]
    print(render_kv(f"fsck {args.root}", rows))
    for line in report.errors:
        print(f"  error: {line}")
    for line in report.warnings:
        print(f"  warning: {line}")
    return 0 if report.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import summarize_trace, validate_trace
    from .obs.stats import load_trace

    try:
        obj = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    errors = validate_trace(obj)
    summary = summarize_trace(obj)
    print(render_kv(f"trace {args.trace}", [
        ("wall ms", summary["wall_ms"]),
        ("events", summary["events"]),
        ("processes", summary["processes"]),
        ("threads", summary["threads"]),
        ("status", "valid" if not errors else "INVALID"),
    ]))
    span_rows = [
        (name, stat["count"], stat["total_ms"], stat["p50_ms"],
         stat["p90_ms"], stat["max_ms"])
        for name, stat in sorted(
            summary["spans"].items(), key=lambda kv: -kv[1]["total_ms"]
        )
    ]
    if span_rows:
        print(render_table(
            ["span", "count", "total ms", "p50 ms", "p90 ms", "max ms"],
            span_rows, precision=2,
        ))
    counter_rows = [
        (name, stat["samples"], stat["last"], stat["high_water"])
        for name, stat in sorted(summary["counters"].items())
    ]
    if counter_rows:
        print(render_table(
            ["counter", "samples", "last", "high water"],
            counter_rows, precision=2,
        ))
    for line in errors:
        print(f"  error: {line}")
    return 0 if not errors else 1


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    from .chaos import CampaignConfig, ChaosFailure, run_campaign, seams_for

    config = CampaignConfig(
        backend=args.backend,
        runs=args.runs,
        seed=args.seed,
        ops_per_run=args.ops,
        max_kills=args.max_kills,
        worker_kill_runs=args.worker_kill_runs,
        remote_fault_rate=args.remote_fault_rate,
        base_rate=args.base_rate,
        step_rate=args.step_rate,
        step_at=args.step_at,
        adaptive=not args.no_adaptive,
        o_save=args.o_save,
    )
    try:
        result = run_campaign(config, run_index=args.run_index)
    except ChaosFailure as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    seams = seams_for(config.backend)
    missed = [seam for seam in seams if seam not in result.seam_kills]
    rows = [
        ("backend", config.backend),
        ("seed", config.seed),
        ("runs ok", result.runs_ok),
        ("runs failed", result.runs_failed),
        ("faults injected", result.kills_total),
        ("seams killed", f"{len(result.seam_kills)}/{len(seams)}"),
        ("worker kills", result.worker_kills),
        ("escalations", result.escalations),
        ("circular detections", result.circular_detections),
        ("no-fire runs", result.no_fire_runs),
        ("digest", result.digest()[:16]),
        ("wall s", round(result.wall_seconds, 2)),
    ]
    if missed and args.run_index is None:
        rows.append(("seams missed", ", ".join(missed)))
    print(render_kv(f"chaos campaign ({config.backend})", rows))
    if result.seam_kills:
        print(render_table(
            ["seam", "kills"],
            sorted(result.seam_kills.items(), key=lambda kv: (-kv[1], kv[0])),
        ))
    if result.recovery_actions:
        print(render_table(
            ["recovery action", "count"],
            sorted(result.recovery_actions.items(), key=lambda kv: (-kv[1], kv[0])),
        ))
    if result.decisions:
        first, last = result.decisions[0], result.decisions[-1]
        print(render_kv("adaptive loop", [
            ("decisions", len(result.decisions)),
            ("rate first -> last",
             f"{first['fault_rate']:.4f} -> {last['fault_rate']:.4f}"),
            ("interval first -> last",
             f"{first['checkpoint_interval']:.1f} -> "
             f"{last['checkpoint_interval']:.1f}"),
            ("k_persist last", last["k_persist"]),
            ("persist tier last", last["persist_tier"]),
        ]))
    if args.report:
        result.save(args.report)
        print(f"report written to {args.report}")
    if args.trace_out:
        result.trace().to_jsonl(args.trace_out)
        print(f"fault trace written to {args.trace_out}")
    return 0


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    from .chaos import FaultTrace, synthetic_trace
    from .core.adaptive import OnlineAdaptiveController, OnlineFaultRateEstimator
    from .core.overhead import optimal_interval
    from .distsim.faultsim import (
        FaultSimConfig,
        simulate_adaptive_run,
        simulate_run_with_faults,
    )

    if args.trace:
        try:
            trace = FaultTrace.from_jsonl(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load trace {args.trace}: {exc}", file=sys.stderr)
            return 2
    else:
        trace = synthetic_trace(
            args.synthetic, nodes=args.nodes, horizon=args.horizon,
            rate_per_node=args.rate, seed=args.seed,
        )
    if args.scale_nodes:
        trace = trace.scaled(args.scale_nodes, seed=args.seed)
    times = trace.fault_times()
    print(render_kv("trace", [
        ("source", args.trace or f"synthetic:{args.synthetic}"),
        ("nodes", trace.nodes),
        ("horizon", trace.horizon),
        ("records", len(trace)),
        ("node-killing faults", len(times)),
        ("fleet rate", round(trace.rate, 4)),
    ]))

    config = FaultSimConfig(
        total_iterations=args.iterations,
        checkpoint_interval=args.interval,
        o_save=args.o_save,
        o_restart=args.o_restart,
        fault_rate=max(len(times), 1) / trace.horizon,
    )
    static = simulate_run_with_faults(config, times)
    controller = OnlineAdaptiveController(
        o_save=args.o_save,
        estimator=OnlineFaultRateEstimator(window=args.window, min_events=3),
        min_interval=1.0,
        max_interval=args.max_interval,
    )
    adaptive, timeline = simulate_adaptive_run(config, times, controller)
    rows = [
        ("static", config.checkpoint_interval, static.num_faults,
         static.num_checkpoints, static.lost_progress, static.overhead),
        ("adaptive", f"{timeline[0][1]:.0f}..{timeline[-1][1]:.0f}",
         adaptive.num_faults, adaptive.num_checkpoints,
         adaptive.lost_progress, adaptive.overhead),
    ]
    oracle_rate = len(times) / trace.horizon
    oracle_interval = optimal_interval(max(args.o_save, 0.01), oracle_rate)
    if oracle_interval != float("inf"):
        oracle_config = FaultSimConfig(
            total_iterations=args.iterations,
            checkpoint_interval=max(1, min(args.iterations,
                                           int(round(oracle_interval)))),
            o_save=args.o_save,
            o_restart=args.o_restart,
            fault_rate=config.fault_rate,
        )
        oracle = simulate_run_with_faults(oracle_config, times)
        rows.append(
            ("oracle (Young-Daly)", oracle_config.checkpoint_interval,
             oracle.num_faults, oracle.num_checkpoints,
             oracle.lost_progress, oracle.overhead))
    print(render_table(
        ["policy", "interval", "faults", "ckpts", "lost iters", "overhead"],
        rows, precision=1,
    ))
    retunes = len(timeline) - 1
    print(render_kv("adaptive controller", [
        ("interval re-reads", retunes),
        ("final estimated rate",
         round(controller.estimator.rate(adaptive.wall_time), 4)),
        ("overhead vs static",
         f"{adaptive.overhead / static.overhead:.2f}x" if static.overhead else "n/a"),
    ]))
    return 0


def _cmd_chaos_report(args: argparse.Namespace) -> int:
    import json

    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load report {args.report}: {exc}", file=sys.stderr)
        return 2
    config = payload.get("config", {})
    print(render_kv(f"chaos report {args.report}", [
        ("backend", config.get("backend", "?")),
        ("seed", config.get("seed", "?")),
        ("runs ok", payload.get("runs_ok", 0)),
        ("runs failed", payload.get("runs_failed", 0)),
        ("faults injected", payload.get("kills_total", 0)),
        ("worker kills", payload.get("worker_kills", 0)),
        ("escalations", payload.get("escalations", 0)),
        ("circular detections", payload.get("circular_detections", 0)),
        ("digest", str(payload.get("digest", "?"))[:16]),
    ]))
    seam_kills = payload.get("seam_kills", {})
    if seam_kills:
        print(render_table(
            ["seam", "kills"],
            sorted(seam_kills.items(), key=lambda kv: (-kv[1], kv[0])),
        ))
    actions = payload.get("recovery_actions", {})
    if actions:
        print(render_table(
            ["recovery action", "count"],
            sorted(actions.items(), key=lambda kv: (-kv[1], kv[0])),
        ))
    decisions = payload.get("decisions", [])
    if decisions:
        first, last = decisions[0], decisions[-1]
        print(render_kv("adaptive loop", [
            ("decisions", len(decisions)),
            ("rate first -> last",
             f"{first['fault_rate']:.4f} -> {last['fault_rate']:.4f}"),
            ("interval first -> last",
             f"{first['checkpoint_interval']:.1f} -> "
             f"{last['checkpoint_interval']:.1f}"),
        ]))
    return 0 if payload.get("runs_failed", 0) == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(prog="moc-repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    size = sub.add_parser("size", help="checkpoint size arithmetic")
    size.add_argument("--model", choices=["gpt-350m-16e", "gpt-125m-8e", "llama-moe"],
                      default="gpt-350m-16e")
    size.add_argument("--experts", type=int, default=64)
    size.add_argument("--hidden", type=int, default=2048)
    size.set_defaults(func=_cmd_size)

    plan = sub.add_parser("plan", help="adaptive PEC configuration")
    plan.add_argument("--gpus", type=int, default=64)
    plan.add_argument("--gpu", choices=["a800", "h100"], default="a800")
    plan.add_argument("--mtbf-hours", type=float, default=8.0)
    plan.add_argument("--tokens-per-gpu", type=int, default=16 * 1024)
    plan.set_defaults(func=_cmd_plan)

    simulate = sub.add_parser("simulate", help="async checkpoint timeline")
    simulate.add_argument("--fb", type=float, default=2.0)
    simulate.add_argument("--update", type=float, default=0.2)
    simulate.add_argument("--snapshot", type=float, default=3.0)
    simulate.add_argument("--persist", type=float, default=2.0)
    simulate.add_argument("--iterations", type=int, default=40)
    simulate.add_argument("--interval", type=int, default=4)
    simulate.set_defaults(func=_cmd_simulate)

    demo = sub.add_parser("demo", help="tiny training run with a fault")
    demo.add_argument("--iterations", type=int, default=40)
    demo.add_argument("--interval", type=int, default=8)
    demo.add_argument("--experts", type=int, default=4)
    demo.add_argument("--backend",
                      choices=["memory", "disk", "sharded", "dedup", "tiered"],
                      default="disk", help="persist-tier storage backend "
                      "(dedup enables delta saves and prints chunk stats; "
                      "tiered adds a write-back simulated remote object "
                      "tier behind the dedup local tier)")
    demo.add_argument("--async-writes", action="store_true",
                      help="drain persist writes through the async pipeline")
    demo.add_argument("--parallel-workers", type=int, default=0,
                      help="hash/compress worker processes for the dedup "
                           "backend's save path (0 = in-process); workers "
                           "read the payload from shared-memory staging")
    demo.add_argument("--codec", default=None,
                      choices=["zlib", "zstd", "lz4", "auto", "none"],
                      help="chunk-compression codec for the dedup backend "
                           "(zstd/lz4 fall back to zlib with a warning when "
                           "not installed; 'auto' picks the best available)")
    demo.add_argument("--remote-latency", type=float, default=0.0,
                      help="simulated per-op latency (seconds) of the "
                           "tiered backend's remote object tier")
    demo.add_argument("--remote-fault-rate", type=float, default=0.0,
                      help="probability in [0, 1) that a remote op raises "
                           "a transient fault; the upload pipeline retries "
                           "with exponential backoff (see 'upload retries')")
    demo.add_argument("--upload-workers", type=int, default=1,
                      help="background upload threads draining the local "
                           "tier to the remote tier (0 = synchronous "
                           "uploads on the save path)")
    demo.add_argument("--local-keep", type=int, default=None,
                      help="keep only the newest K checkpoint stamps on "
                           "the tiered backend's local tier (older "
                           "remote-durable entries are demoted)")
    demo.add_argument("--hedge-after", type=float, default=0.25,
                      help="seconds before a remote read races a second, "
                           "hedged request (tiered backend only)")
    demo.add_argument("--dp", type=int, default=2,
                      help="data-parallel degree of the save topology "
                           "(DP x EP ranks total)")
    demo.add_argument("--ep", type=int, default=2,
                      help="expert-parallel degree of the save topology")
    demo.add_argument("--gpus-per-node", type=int, default=2,
                      help="ranks per node for snapshot placement")
    demo.add_argument("--resume-dp", type=int, default=None,
                      help="after the run, reshard-resume the checkpoint "
                           "at this data-parallel degree and verify the "
                           "restored state matches a source-topology restore")
    demo.add_argument("--resume-ep", type=int, default=None,
                      help="expert-parallel degree of the resharded resume "
                           "(must divide --experts)")
    demo.add_argument("--restore-workers", type=int, default=4,
                      help="parallel readers for the resharded restore")
    demo.add_argument("--io-workers", type=int, default=None,
                      help="worker threads of the shared prioritized I/O "
                           "scheduler every storage pool submits through "
                           "(default 4); reconfigures the process-wide "
                           "scheduler at startup")
    demo.add_argument("--io-byte-budget", type=int, default=None,
                      metavar="MIB",
                      help="shared byte budget (MiB) across all queued I/O "
                           "tasks — admission blocks on bytes, not task "
                           "count (default 256; 0 = unlimited)")
    demo.add_argument("--io-rate", action="append", default=None,
                      metavar="CLASS=RATE[:BURST]",
                      help="per-QoS-class token-bucket rate limit in tasks/"
                           "sec, e.g. 'maintenance=2' or 'upload=50:10'; "
                           "repeatable; classes: restore, save, upload, "
                           "maintenance (default: unlimited)")
    demo.add_argument("--profile", action="store_true",
                      help="print the save-pipeline profile: per-save "
                           "wall time plus serialized/hashed/copied byte "
                           "meters (hash passes and staging copies per "
                           "payload byte), and the per-lane restore "
                           "breakdown of every recovery")
    demo.add_argument("--trace", default=None, metavar="PATH",
                      help="record span tracing for the whole run and "
                           "export a Chrome trace-event JSON to PATH "
                           "(load it in Perfetto / chrome://tracing, or "
                           "summarize with 'moc-repro stats PATH')")
    demo.add_argument("--metrics-dump", action="store_true",
                      help="print the metrics registry in Prometheus "
                           "text format after the run")
    demo.set_defaults(func=_cmd_demo)

    gc = sub.add_parser(
        "gc", help="reclaim zero-ref chunks in a dedup (or tiered) "
                   "checkpoint directory"
    )
    gc.add_argument("--root", required=True,
                    help="dedup backend root (manifests.jsonl + chunks/) or "
                         "tiered root (tier.jsonl + local/ + remote/)")
    gc.set_defaults(func=_cmd_gc)

    fsck = sub.add_parser(
        "fsck", help="verify a dedup or tiered checkpoint directory's "
                     "integrity"
    )
    fsck.add_argument("--root", required=True,
                      help="dedup backend root (manifests.jsonl + chunks/) "
                           "or tiered root (tier.jsonl + local/ + remote/)")
    fsck.add_argument("--repair", action="store_true",
                      help="rewrite the refcount journal from live manifests "
                           "(and, for a tiered root, drop invalid remote "
                           "claims and reschedule their uploads), clearing "
                           "crash-window drift")
    fsck.set_defaults(func=_cmd_fsck)

    stats = sub.add_parser(
        "stats", help="summarize a Chrome trace-event JSON exported by "
                      "'demo --trace'"
    )
    stats.add_argument("trace", help="path to the trace JSON")
    stats.set_defaults(func=_cmd_stats)

    chaos = sub.add_parser(
        "chaos", help="fault-injection campaigns against the storage stack"
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    chaos_run = chaos_sub.add_parser(
        "run", help="execute a seeded randomized fault-injection campaign"
    )
    chaos_run.add_argument("--backend",
                           choices=["dedup", "tiered", "async-tiered"],
                           default="tiered",
                           help="storage stack under test")
    chaos_run.add_argument("--runs", type=int, default=100,
                           help="number of seeded runs in the campaign")
    chaos_run.add_argument("--seed", type=int, default=0,
                           help="campaign seed; same seed = same campaign")
    chaos_run.add_argument("--run-index", type=int, default=None,
                           help="replay exactly one run of the campaign "
                                "(the repro command printed on failure)")
    chaos_run.add_argument("--ops", type=int, default=12,
                           help="storage operations per run")
    chaos_run.add_argument("--max-kills", type=int, default=3,
                           help="crash injections allowed per run")
    chaos_run.add_argument("--worker-kill-runs", type=int, default=2,
                           help="runs at the campaign tail that SIGKILL "
                                "chunk-pool worker processes instead of "
                                "injecting at a seam")
    chaos_run.add_argument("--remote-fault-rate", type=float, default=0.04,
                           help="transient fault probability of the "
                                "simulated remote tier")
    chaos_run.add_argument("--base-rate", type=float, default=0.5,
                           help="virtual-clock kill rate for the random "
                                "phase of the campaign")
    chaos_run.add_argument("--step-rate", type=float, default=None,
                           help="kill rate after --step-at of the runs "
                                "(a step change for the adaptive loop)")
    chaos_run.add_argument("--step-at", type=float, default=0.5,
                           help="fraction of runs after which --step-rate "
                                "takes effect")
    chaos_run.add_argument("--no-adaptive", action="store_true",
                           help="disable the online adaptive controller "
                                "(fixed local-keep, no decision timeline)")
    chaos_run.add_argument("--o-save", type=float, default=0.05,
                           help="checkpoint save cost fed to the adaptive "
                                "controller")
    chaos_run.add_argument("--report", default=None, metavar="PATH",
                           help="write the full campaign report JSON "
                                "(render later with 'chaos report')")
    chaos_run.add_argument("--trace-out", default=None, metavar="PATH",
                           help="write the campaign's fault stream as a "
                                "JSONL trace (replay with 'chaos replay')")
    chaos_run.set_defaults(func=_cmd_chaos_run)

    chaos_replay = chaos_sub.add_parser(
        "replay", help="replay a fault trace through the long-run "
                       "simulator, static vs adaptive"
    )
    chaos_replay.add_argument("--trace", default=None, metavar="PATH",
                              help="JSONL fault trace (e.g. from "
                                   "'chaos run --trace-out')")
    chaos_replay.add_argument("--synthetic",
                              choices=["crash", "preemption", "straggler"],
                              default="crash",
                              help="generate a synthetic trace instead "
                                   "(ignored when --trace is given)")
    chaos_replay.add_argument("--nodes", type=int, default=64,
                              help="fleet size of the synthetic trace")
    chaos_replay.add_argument("--scale-nodes", type=int, default=None,
                              help="superpose-scale the trace to this many "
                                   "nodes before replay")
    chaos_replay.add_argument("--rate", type=float, default=0.001,
                              help="per-node fault rate of the synthetic "
                                   "trace")
    chaos_replay.add_argument("--horizon", type=float, default=5000.0,
                              help="time horizon of the synthetic trace "
                                   "(iteration units)")
    chaos_replay.add_argument("--seed", type=int, default=0,
                              help="seed for synthesis and scaling")
    chaos_replay.add_argument("--iterations", type=int, default=5000,
                              help="simulated run length (iterations)")
    chaos_replay.add_argument("--interval", type=int, default=50,
                              help="static checkpoint interval (also the "
                                   "adaptive run's starting cadence)")
    chaos_replay.add_argument("--o-save", type=float, default=0.5,
                              help="checkpoint save cost (iteration units)")
    chaos_replay.add_argument("--o-restart", type=float, default=5.0,
                              help="restart cost per fault")
    chaos_replay.add_argument("--window", type=float, default=400.0,
                              help="fault-rate estimator window")
    chaos_replay.add_argument("--max-interval", type=float, default=1000.0,
                              help="adaptive controller's interval ceiling")
    chaos_replay.set_defaults(func=_cmd_chaos_replay)

    chaos_report = chaos_sub.add_parser(
        "report", help="render a saved campaign report JSON"
    )
    chaos_report.add_argument("report", help="path to the report JSON "
                                             "written by 'chaos run --report'")
    chaos_report.set_defaults(func=_cmd_chaos_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
