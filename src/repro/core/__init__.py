"""MoC-System core: PEC, PLT, sharding, two-level management, overhead model."""

from .adaptive import (
    AdaptivePlan,
    choose_k_snapshot,
    recommend_configuration,
    recommend_for_deployment,
)
from .buffers import Buffer, BufferError, BufferStatus, TripleBuffer
from .config import (
    DEFAULT_PLT_THRESHOLD,
    MoCConfig,
    PECConfig,
    SelectionStrategy,
    ShardingPolicy,
    TwoLevelConfig,
)
from .manager import MoCCheckpointManager, RecoveryResult
from .overhead import (
    OverheadBreakdown,
    OverheadInputs,
    equal_ratio_interval,
    expected_faults,
    moc_beats_full,
    optimal_interval,
    overhead_breakdown,
    save_overhead,
    total_overhead,
)
from .pec import PECPlan, PECPlanner, full_save_cycle_length
from .plt import PERSIST_TIER, SNAPSHOT_TIER, FaultLoss, PLTTracker, analytic_plt
from .recovery import (
    RecoveryPlan,
    build_recovery_plan,
    default_expert_placement,
    placement_from_topology,
)
from .verify import ConsistencyReport, EntryReport, verify_consistency
from .selection import (
    DynamicKController,
    ExpertSelector,
    FullSelector,
    LoadAwareSelector,
    SequentialSelector,
    make_selector,
)
from .sharding import (
    CheckpointWorkload,
    ShardItem,
    ShardPlan,
    ShardTopology,
    pec_imbalance_condition,
    plan_checkpoint_shards,
)

__all__ = [
    "AdaptivePlan",
    "Buffer",
    "BufferError",
    "BufferStatus",
    "CheckpointWorkload",
    "ConsistencyReport",
    "DEFAULT_PLT_THRESHOLD",
    "DynamicKController",
    "EntryReport",
    "ExpertSelector",
    "FaultLoss",
    "FullSelector",
    "LoadAwareSelector",
    "MoCCheckpointManager",
    "MoCConfig",
    "OverheadBreakdown",
    "OverheadInputs",
    "PECConfig",
    "PECPlan",
    "PECPlanner",
    "PERSIST_TIER",
    "PLTTracker",
    "RecoveryPlan",
    "RecoveryResult",
    "SNAPSHOT_TIER",
    "SelectionStrategy",
    "SequentialSelector",
    "ShardItem",
    "ShardPlan",
    "ShardTopology",
    "ShardingPolicy",
    "TripleBuffer",
    "TwoLevelConfig",
    "analytic_plt",
    "choose_k_snapshot",
    "build_recovery_plan",
    "default_expert_placement",
    "equal_ratio_interval",
    "expected_faults",
    "full_save_cycle_length",
    "make_selector",
    "moc_beats_full",
    "optimal_interval",
    "overhead_breakdown",
    "pec_imbalance_condition",
    "placement_from_topology",
    "plan_checkpoint_shards",
    "recommend_configuration",
    "recommend_for_deployment",
    "save_overhead",
    "total_overhead",
    "verify_consistency",
]
