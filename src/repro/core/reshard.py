"""Elastic reshard-on-resume: topology-change recovery planning.

The sharded-checkpoint planner (``core/sharding.py``) and the recovery
planner (``core/recovery.py``) both historically assumed the restore
topology equals the save topology.  Production MoE runs routinely resume
on a different DP×EP layout after node loss or a cluster resize; this
module drops that assumption.

A :class:`ReshardPlan` maps every persisted entry from the saved
:class:`~repro.core.sharding.ShardTopology` to an arbitrary *target*
topology:

* **per-expert state** is re-assigned to the expert's owner ranks under
  the target EP grouping (replicas move when the EP degree changes);
* **non-expert state** — the full-parameter entries carrying the ZeRO-2
  optimizer partitions — is re-sliced: read work is balanced across all
  target ranks with the same LPT allocator the save-side sharding
  planner uses;
* entries whose in-memory snapshot lived on a node that **no longer
  exists** under the target fall back to the persist tier (the planner
  delegates tier choice to ``build_recovery_plan(...,
  target_topology=)``).

The plan's :meth:`~ReshardPlan.read_order` interleaves the per-rank read
lists round-robin — the prefetch order the parallel restore pipeline
(:class:`~repro.ckpt.restore.ParallelRestorer`) consumes so every target
rank's restore stream progresses concurrently.

Topology metadata travels *inside* the checkpoint: the manager persists
a ``meta:topology`` entry (``d_dp`` / ``d_ep`` / ``gpus_per_node``), and
:func:`load_saved_topology` recovers it on resume, so the resumed job
needs no side-channel to learn the save-time layout.

``grid_topology(dp, ep)`` translates the operator-facing DP×EP grid
(``dp`` data-parallel replicas of an ``ep``-way expert-parallel group)
into the planner's rank layout: ``dp × ep`` total ranks in ``dp`` EP
groups of ``ep`` ranks.  A checkpoint saved at DP=4/EP=2 can resume at
DP=2/EP=4 — same world size, different expert sharding — or at a
different world size entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import zip_longest
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..ckpt.backend import CheckpointBackend
from ..ckpt.manifest import meta_entry_key
from ..models.serial import ExpertKey
from .plt import PERSIST_TIER, SNAPSHOT_TIER
from .recovery import (
    RecoveryPlan,
    build_recovery_plan,
    lost_nodes_for_target,
    placement_from_topology,
)
from .sharding import ShardTopology, _greedy_placement


class ReshardError(ValueError):
    """A target topology cannot host the checkpoint being resumed."""


def grid_topology(dp: int, ep: int, gpus_per_node: int = 8) -> ShardTopology:
    """Build a :class:`ShardTopology` from an operator's DP×EP grid.

    ``dp`` is the number of data-parallel replicas of the expert grid,
    ``ep`` the expert-parallel degree; the run uses ``dp * ep`` ranks in
    ``dp`` EP groups of ``ep`` ranks each.
    """
    if dp < 1 or ep < 1:
        raise ReshardError(f"grid degrees must be >= 1 (got dp={dp}, ep={ep})")
    return ShardTopology(d_dp=dp * ep, d_ep=ep, gpus_per_node=gpus_per_node)


# ---------------------------------------------------------------------------
# Topology metadata persisted inside the checkpoint
# ---------------------------------------------------------------------------

TOPOLOGY_META_NAME = "topology"


def topology_meta_entry(topology: ShardTopology) -> Dict[str, np.ndarray]:
    """Encode a topology as a checkpoint entry (numpy scalars)."""
    return {
        "d_dp": np.asarray(topology.d_dp),
        "d_ep": np.asarray(topology.d_ep),
        "gpus_per_node": np.asarray(topology.gpus_per_node),
    }


def topology_from_meta(entry: Mapping[str, np.ndarray]) -> ShardTopology:
    """Invert :func:`topology_meta_entry`."""
    def scalar(name: str) -> int:
        return int(np.asarray(entry[name]).reshape(-1)[0])

    return ShardTopology(
        d_dp=scalar("d_dp"),
        d_ep=scalar("d_ep"),
        gpus_per_node=scalar("gpus_per_node"),
    )


def load_saved_topology(store: CheckpointBackend) -> Optional[ShardTopology]:
    """The topology a persisted checkpoint was saved under, if recorded."""
    key = meta_entry_key(TOPOLOGY_META_NAME)
    if not store.has(key):
        return None
    return topology_from_meta(store.get(key))


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReshardRead:
    """One entry read assigned to one target rank."""

    entry_key: str
    tier: str  # SNAPSHOT_TIER | PERSIST_TIER
    target_rank: int
    nbytes: int
    kind: str  # "ne" | "expert"


@dataclass
class ReshardPlan:
    """Per-target-rank restore assignments for a topology change."""

    source: Optional[ShardTopology]
    target: ShardTopology
    recovery: RecoveryPlan
    reads: List[ReshardRead] = field(default_factory=list)
    #: Experts whose owner-rank set differs between source and target.
    moved_experts: List[ExpertKey] = field(default_factory=list)
    #: Experts forced to the persist tier purely by the topology change
    #: (their snapshots survived the fault but their nodes no longer exist).
    fallback_experts: List[ExpertKey] = field(default_factory=list)

    @property
    def resume_iteration(self) -> int:
        return self.recovery.resume_iteration

    def per_rank(self) -> Dict[int, List[ReshardRead]]:
        grouped: Dict[int, List[ReshardRead]] = {
            rank: [] for rank in range(self.target.num_ranks)
        }
        for read in self.reads:
            grouped[read.target_rank].append(read)
        return grouped

    def per_rank_bytes(self) -> List[int]:
        totals = [0] * self.target.num_ranks
        for read in self.reads:
            totals[read.target_rank] += read.nbytes
        return totals

    def rank_bytes(self, rank: int) -> int:
        return self.per_rank_bytes()[rank]

    def bottleneck_bytes(self) -> int:
        return max(self.per_rank_bytes(), default=0)

    def total_bytes(self) -> int:
        return sum(read.nbytes for read in self.reads)

    def imbalance(self) -> float:
        """Bottleneck / mean read bytes — 1.0 is perfectly balanced."""
        per_rank = self.per_rank_bytes()
        mean = sum(per_rank) / len(per_rank) if per_rank else 0.0
        return max(per_rank) / mean if mean > 0 else 1.0

    def read_order(self) -> List[ReshardRead]:
        """Round-robin interleave of the per-rank read lists.

        This is the prefetch order handed to the parallel restore
        pipeline: every target rank's first entries are fetched before
        any rank's tail, so all ranks' restore streams progress together
        instead of rank 0 finishing before rank N-1 starts.
        """
        lanes = [reads for reads in self.per_rank().values() if reads]
        order: List[ReshardRead] = []
        for wave in zip_longest(*lanes):
            order.extend(read for read in wave if read is not None)
        return order


def plan_reshard(
    memory_store: CheckpointBackend,
    disk_store: CheckpointBackend,
    entry_keys_by_expert: Mapping[ExpertKey, Sequence[str]],
    non_expert_entry_keys: Sequence[str],
    expert_placement: Mapping[ExpertKey, Sequence[int]],
    num_experts: int,
    target: ShardTopology,
    source: Optional[ShardTopology] = None,
    failed_nodes: Iterable[int] = (),
    resume_iteration: int = 0,
    two_level: bool = True,
) -> ReshardPlan:
    """Map a persisted checkpoint onto an arbitrary target topology.

    ``expert_placement`` is the *save-time* snapshot placement (hosting
    nodes per expert); tier choice falls back to the persist tier for
    experts whose snapshot nodes failed **or** no longer exist under
    ``target``.  ``source`` (the save-time topology, when known) is only
    used for movement accounting — restore correctness never depends on
    it because entries are addressed logically.
    """
    if num_experts > 0 and num_experts % target.d_ep != 0:
        raise ReshardError(
            f"cannot reshard to d_ep={target.d_ep}: num_experts={num_experts} "
            f"is not divisible by the target expert-parallel degree "
            f"(valid d_ep values divide {num_experts})"
        )

    failed = set(failed_nodes)
    recovery = build_recovery_plan(
        memory_store,
        disk_store,
        entry_keys_by_expert,
        non_expert_entry_keys,
        expert_placement,
        failed_nodes=failed,
        resume_iteration=resume_iteration,
        two_level=two_level,
        target_topology=target,
    )
    lost = lost_nodes_for_target(expert_placement, target)

    plan = ReshardPlan(source=source, target=target, recovery=recovery)
    loads = {rank: 0 for rank in range(target.num_ranks)}

    # -- per-expert state: owner ranks under the target EP grouping ------
    for expert_key in sorted(entry_keys_by_expert):
        hosts = target.ranks_hosting_expert(expert_key.expert, num_experts)
        reader = min(hosts, key=lambda rank: (loads[rank], rank))
        tier = recovery.tier_per_expert.get(expert_key, PERSIST_TIER)
        store = memory_store if tier == SNAPSHOT_TIER else disk_store
        for entry_key in entry_keys_by_expert[expert_key]:
            nbytes = store.nbytes_of(entry_key)
            plan.reads.append(
                ReshardRead(entry_key, tier, reader, nbytes, kind="expert")
            )
            loads[reader] += nbytes
        if source is not None and num_experts % source.d_ep == 0:
            old_hosts = source.ranks_hosting_expert(expert_key.expert, num_experts)
            if set(old_hosts) != set(hosts):
                plan.moved_experts.append(expert_key)
        if tier == PERSIST_TIER and two_level:
            hosting = expert_placement.get(expert_key, [0])
            survived_fault = [node for node in hosting if node not in failed]
            if survived_fault and all(node in lost for node in survived_fault):
                plan.fallback_experts.append(expert_key)

    # -- non-expert state: re-slice read work across ALL target ranks ----
    # Every non-expert entry carries that parameter's ZeRO-2 optimizer
    # partition; under the target topology the partition boundaries move,
    # so read work is re-balanced with the same LPT allocator the save
    # planner uses, seeded with the expert loads assigned above.
    ne_items: List[Tuple[str, int]] = [
        (entry_key, disk_store.nbytes_of(entry_key))
        for entry_key in non_expert_entry_keys
    ]
    placement = _greedy_placement(target.num_ranks, ne_items, initial_loads=loads)
    for rank, items in placement.items():
        for entry_key, nbytes in items:
            plan.reads.append(
                ReshardRead(entry_key, PERSIST_TIER, rank, nbytes, kind="ne")
            )
    return plan


def reshard_read_requests(plan: ReshardPlan, memory_store, disk_store):
    """Translate a plan into :class:`~repro.ckpt.restore.ReadRequest`
    objects in prefetch order, ready for :class:`ParallelRestorer`."""
    from ..ckpt.restore import ReadRequest

    return [
        ReadRequest(
            key=read.entry_key,
            store=memory_store if read.tier == SNAPSHOT_TIER else disk_store,
        )
        for read in plan.read_order()
    ]
