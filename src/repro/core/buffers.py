"""Triple-buffer state machine for asynchronous checkpointing (Fig. 9).

Each node-level agent owns ``num_buffers`` (three, by default) buffers
that rotate through the statuses of Figure 9:

``SNAPSHOT`` (free / receiving a GPU->CPU snapshot) ->
``PERSIST``  (being written to persistent storage)   ->
``RECOVERY`` (holds the latest persisted checkpoint, used for restart)
-> back to ``SNAPSHOT`` when another buffer finishes persisting.

Invariants enforced (and asserted by the property tests):

* at most one buffer is persisting at a time;
* at most one buffer is in RECOVERY status;
* a snapshot buffer only transitions to PERSIST when no other persist is
  in flight — otherwise it waits, holding its (newer) snapshot.

The machine is purely event-driven on logical timestamps, so the real
trainer and the timeline simulator can both drive it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class BufferStatus(str, enum.Enum):
    SNAPSHOT = "snapshot"  # free or being filled by a snapshot
    SNAPSHOT_DONE = "snapshot_done"  # filled, waiting for the persist slot
    PERSIST = "persist"  # being written to storage
    RECOVERY = "recovery"  # latest persisted checkpoint


@dataclass
class Buffer:
    index: int
    status: BufferStatus = BufferStatus.SNAPSHOT
    checkpoint_index: Optional[int] = None  # which checkpoint occupies it
    snapshot_started: Optional[float] = None
    snapshot_finished: Optional[float] = None
    persist_started: Optional[float] = None
    persist_finished: Optional[float] = None

    def reset(self) -> None:
        self.status = BufferStatus.SNAPSHOT
        self.checkpoint_index = None
        self.snapshot_started = None
        self.snapshot_finished = None
        self.persist_started = None
        self.persist_finished = None


class BufferError(RuntimeError):
    """Raised on illegal buffer transitions."""


@dataclass
class TripleBuffer:
    """The rotating buffer pool of Section 5.2."""

    num_buffers: int = 3

    def __post_init__(self) -> None:
        if self.num_buffers < 2:
            raise ValueError("need at least two buffers (snapshot + persist)")
        self.buffers: List[Buffer] = [Buffer(i) for i in range(self.num_buffers)]
        self._active_snapshot: Optional[Buffer] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _with_status(self, status: BufferStatus) -> List[Buffer]:
        return [b for b in self.buffers if b.status is status]

    @property
    def persisting(self) -> Optional[Buffer]:
        persisting = self._with_status(BufferStatus.PERSIST)
        if len(persisting) > 1:  # pragma: no cover - invariant guard
            raise BufferError("multiple buffers persisting")
        return persisting[0] if persisting else None

    @property
    def recovery_buffer(self) -> Optional[Buffer]:
        buffers = self._with_status(BufferStatus.RECOVERY)
        if len(buffers) > 1:  # pragma: no cover - invariant guard
            raise BufferError("multiple recovery buffers")
        return buffers[0] if buffers else None

    def can_start_snapshot(self) -> bool:
        return (
            self._active_snapshot is None
            and any(
                b.status is BufferStatus.SNAPSHOT and b.checkpoint_index is None
                for b in self.buffers
            )
        )

    def latest_recoverable_checkpoint(self) -> Optional[int]:
        buffer = self.recovery_buffer
        return buffer.checkpoint_index if buffer else None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def start_snapshot(self, checkpoint_index: int, time: float) -> Buffer:
        if self._active_snapshot is not None:
            raise BufferError("a snapshot is already in progress")
        for buffer in self.buffers:
            if buffer.status is BufferStatus.SNAPSHOT and buffer.checkpoint_index is None:
                buffer.checkpoint_index = checkpoint_index
                buffer.snapshot_started = time
                self._active_snapshot = buffer
                return buffer
        raise BufferError("no free buffer for snapshot")

    def finish_snapshot(self, time: float) -> Buffer:
        """Snapshot complete; start persisting if the persist slot is free."""
        buffer = self._active_snapshot
        if buffer is None:
            raise BufferError("no snapshot in progress")
        buffer.snapshot_finished = time
        self._active_snapshot = None
        if self.persisting is None:
            buffer.status = BufferStatus.PERSIST
            buffer.persist_started = time
        else:
            buffer.status = BufferStatus.SNAPSHOT_DONE
        return buffer

    def finish_persist(self, time: float) -> Buffer:
        """Persist complete: buffer becomes the recovery buffer.

        The previous recovery buffer (if any) is recycled to SNAPSHOT, and
        the oldest SNAPSHOT_DONE buffer (if any) starts persisting.
        """
        buffer = self.persisting
        if buffer is None:
            raise BufferError("no persist in progress")
        buffer.persist_finished = time
        previous = self.recovery_buffer
        buffer.status = BufferStatus.RECOVERY
        if previous is not None:
            previous.reset()
        waiting = sorted(
            self._with_status(BufferStatus.SNAPSHOT_DONE),
            key=lambda b: (b.snapshot_finished, b.index),
        )
        if waiting:
            nxt = waiting[0]
            nxt.status = BufferStatus.PERSIST
            nxt.persist_started = time
        return buffer
