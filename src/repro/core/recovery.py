"""Recovery planning: storage-only vs two-level (Section 5.1, Figure 8).

After a fault, every entry of the model state must be restored from the
freshest *available* tier:

* entries whose in-memory snapshot lived on a surviving node can be
  restored from CPU memory — these may be newer than the last persisted
  checkpoint (snapshot-PEC runs with a larger ``K`` and the persist of
  the newest snapshot may not have completed);
* everything else falls back to persistent storage.

The planner is a pure function over store contents + expert placement, so
it is directly property-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..ckpt.backend import CheckpointBackend
from ..models.serial import ExpertKey
from .plt import PERSIST_TIER, SNAPSHOT_TIER
from .sharding import ShardTopology


@dataclass
class RecoveryPlan:
    """Which tier each entry is restored from, plus PLT bookkeeping."""

    sources: Dict[str, str] = field(default_factory=dict)  # entry key -> tier
    resume_iteration: int = 0
    tier_per_expert: Dict[ExpertKey, str] = field(default_factory=dict)
    memory_bytes: int = 0
    storage_bytes: int = 0

    def tier_of(self, entry_key: str) -> str:
        try:
            return self.sources[entry_key]
        except KeyError:
            tiers = sorted(set(self.sources.values()))
            raise KeyError(
                f"no recovery source for entry {entry_key!r}: this plan covers "
                f"{len(self.sources)} entries"
                + (f" across tiers {tiers}" if tiers else " (the plan is empty)")
            ) from None


def default_expert_placement(
    num_moe_layers: int, num_experts: int, num_nodes: int = 2
) -> Dict[ExpertKey, List[int]]:
    """Stripe experts over nodes: expert ``e`` lives on one node.

    Used when no full topology is supplied; matches a single-EP-group
    deployment where each expert has exactly one hosting node.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    placement: Dict[ExpertKey, List[int]] = {}
    for layer in range(num_moe_layers):
        for expert in range(num_experts):
            node = expert * num_nodes // num_experts
            placement[ExpertKey(layer, expert)] = [node]
    return placement


def placement_from_topology(
    topology: ShardTopology, num_moe_layers: int, num_experts: int
) -> Dict[ExpertKey, List[int]]:
    """Hosting nodes of every expert under a DP+EP topology.

    With multiple EP groups an expert has one replica per group, so its
    snapshot survives as long as *any* replica's node survives.
    """
    placement: Dict[ExpertKey, List[int]] = {}
    for layer in range(num_moe_layers):
        for expert in range(num_experts):
            ranks = topology.ranks_hosting_expert(expert, num_experts)
            nodes = sorted({topology.node_of(rank) for rank in ranks})
            placement[ExpertKey(layer, expert)] = nodes
    return placement


def lost_nodes_for_target(
    expert_placement: Mapping[ExpertKey, Sequence[int]],
    target_topology: ShardTopology,
) -> Set[int]:
    """Snapshot-hosting nodes that do not exist in ``target_topology``.

    An elastic resume may land on fewer nodes than the save ran on; any
    node index beyond the target's node count is gone along with its CPU
    memory, exactly like a failed node.
    """
    known = {node for nodes in expert_placement.values() for node in nodes}
    return {node for node in known if node >= target_topology.num_nodes}


def build_recovery_plan(
    memory_store: CheckpointBackend,
    disk_store: CheckpointBackend,
    entry_keys_by_expert: Mapping[ExpertKey, Sequence[str]],
    non_expert_entry_keys: Sequence[str],
    expert_placement: Mapping[ExpertKey, Sequence[int]],
    failed_nodes: Iterable[int],
    resume_iteration: int,
    two_level: bool = True,
    target_topology: Optional[ShardTopology] = None,
) -> RecoveryPlan:
    """Assemble the per-entry recovery sources for a fault.

    For each expert: if two-level recovery is enabled, the expert's
    snapshot survived (some hosting node is alive) and the memory tier
    actually holds its entries, restore from memory; otherwise from
    storage.  Non-expert entries are restored from storage — they are
    persisted in full every checkpoint so there is no staleness to avoid
    (surviving nodes may read them from memory in practice, which only
    changes transfer cost, not state; the cost saving is modelled in
    ``distsim``).

    ``target_topology`` enables topology-change recovery: nodes of the
    save-time placement that no longer exist under the target count as
    failed, so their experts fall back to the persist tier.
    """
    failed = set(failed_nodes)
    if target_topology is not None:
        failed |= lost_nodes_for_target(expert_placement, target_topology)
    plan = RecoveryPlan(resume_iteration=resume_iteration)

    for entry_key in non_expert_entry_keys:
        if not disk_store.has(entry_key):
            raise KeyError(f"non-expert entry {entry_key!r} missing from storage")
        plan.sources[entry_key] = PERSIST_TIER
        plan.storage_bytes += len_of(disk_store, entry_key)

    for expert_key, entry_keys in entry_keys_by_expert.items():
        hosting = expert_placement.get(expert_key, [0])
        snapshot_alive = any(node not in failed for node in hosting)
        use_memory = (
            two_level
            and snapshot_alive
            and all(memory_store.has(key) for key in entry_keys)
        )
        tier = SNAPSHOT_TIER if use_memory else PERSIST_TIER
        plan.tier_per_expert[expert_key] = tier
        for entry_key in entry_keys:
            store = memory_store if tier == SNAPSHOT_TIER else disk_store
            if not store.has(entry_key):
                raise KeyError(f"expert entry {entry_key!r} missing from {tier}")
            plan.sources[entry_key] = tier
            nbytes = len_of(store, entry_key)
            if tier == SNAPSHOT_TIER:
                plan.memory_bytes += nbytes
            else:
                plan.storage_bytes += nbytes
    return plan


def len_of(store: CheckpointBackend, entry_key: str) -> int:
    """Byte size of an entry (via store metadata, not a read)."""
    return store.nbytes_of(entry_key)
