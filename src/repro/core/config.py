"""Configuration objects for the MoC-System.

Groups the knobs the paper exposes: PEC (``K_pec`` split into
``K_snapshot``/``K_persist``, selection strategy, which state components
PEC applies to), the sharding policy, and the two-level asynchronous
checkpointing parameters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class SelectionStrategy(str, enum.Enum):
    """How PEC picks which experts to save (Section 3.2)."""

    SEQUENTIAL = "sequential"
    LOAD_AWARE = "load_aware"
    FULL = "full"


class ShardingPolicy(str, enum.Enum):
    """Checkpoint sharding strategies (Section 4 / Figure 10).

    ``BASELINE``  — Megatron-DeepSpeed behaviour: rank 0 saves the
                    non-expert parameters, EP-group-0 saves expert
                    parameters, every rank saves its own ZeRO-2 optimizer
                    shard.
    ``EE``        — equal sharding of the expert part across EP groups.
    ``EE_EN``     — EE plus equal (greedy) sharding of the non-expert part
                    across all DP ranks.
    ``EE_AN``     — EE plus adaptive non-expert sharding that balances
                    against the PEC expert workload.
    """

    BASELINE = "baseline"
    EE = "ee"
    EE_EN = "ee+en"
    EE_AN = "ee+an"


# The accuracy-safe PLT budget observed in Figure 5 (Section 3.1.2).
DEFAULT_PLT_THRESHOLD = 0.0375


@dataclass
class PECConfig:
    """Partial Experts Checkpointing configuration (Section 3, 5.1).

    ``k_snapshot`` experts per MoE layer are copied GPU->CPU each
    checkpoint; ``k_persist`` of those are persisted to storage.  Setting
    both to ``num_experts`` (or using ``SelectionStrategy.FULL``)
    recovers conventional full checkpointing.

    ``apply_to_weights`` / ``apply_to_moments`` select the "W" / "O"
    variants of Table 3: a component not covered by PEC is saved in full
    for every expert.  The fp32 master copy is always saved in full (the
    recovery path needs a consistent master; this matches the paper's
    measured checkpoint ratios — see DESIGN.md).
    """

    k_snapshot: int = 1
    k_persist: int = 1
    selection: SelectionStrategy = SelectionStrategy.SEQUENTIAL
    apply_to_weights: bool = True
    apply_to_moments: bool = True
    dynamic_k: bool = False
    plt_threshold: float = DEFAULT_PLT_THRESHOLD

    def __post_init__(self) -> None:
        if self.k_persist > self.k_snapshot:
            raise ValueError(
                f"k_persist ({self.k_persist}) must not exceed k_snapshot ({self.k_snapshot}):"
                " persist-PEC selects from the snapshot set (Section 5.1)"
            )
        if self.k_snapshot < 1 or self.k_persist < 1:
            raise ValueError("k_snapshot and k_persist must be >= 1")

    @classmethod
    def full(cls, num_experts: int) -> "PECConfig":
        """Conventional full checkpointing expressed as a PEC config."""
        return cls(
            k_snapshot=num_experts,
            k_persist=num_experts,
            selection=SelectionStrategy.FULL,
        )


@dataclass
class TwoLevelConfig:
    """Two-level checkpointing management (Section 5)."""

    checkpoint_interval: int = 10  # iterations between checkpoints (I_ckpt)
    async_checkpointing: bool = True
    num_buffers: int = 3  # triple buffering (Section 5.2)
    two_level_recovery: bool = True  # recover surviving nodes from memory


@dataclass
class MoCConfig:
    """Top-level MoC-System configuration."""

    pec: PECConfig = field(default_factory=PECConfig)
    sharding: ShardingPolicy = ShardingPolicy.EE_AN
    two_level: TwoLevelConfig = field(default_factory=TwoLevelConfig)

    @classmethod
    def baseline(cls, num_experts: int, checkpoint_interval: int = 10) -> "MoCConfig":
        """The Megatron-DeepSpeed baseline: blocking full checkpointing."""
        return cls(
            pec=PECConfig.full(num_experts),
            sharding=ShardingPolicy.BASELINE,
            two_level=TwoLevelConfig(
                checkpoint_interval=checkpoint_interval,
                async_checkpointing=False,
                two_level_recovery=False,
            ),
        )
