"""Adaptive configuration of two-level PEC (Section 5.3).

Turns the paper's configuration rules into an API: given the durations a
deployment exhibits (F&B time, snapshot seconds per ``K_snapshot``,
persist seconds per ``K_persist``) and the cluster's fault rate, choose

* the largest ``K_snapshot`` whose snapshot fully hides under the next
  iteration's F&B (zero stall => minimal ``O_save``, maximal PLT
  protection from the memory tier);
* a small ``K_persist`` (the two-level recovery path absorbs its PLT);
* the checkpoint interval: at least the persist-phase lower bound, and
  otherwise the Young-Daly optimum for the measured ``O_save``.

The functions take plain duration callables so they work against the
simulator (``repro.distsim``) and against real measurements alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .overhead import optimal_interval, save_overhead


@dataclass(frozen=True)
class AdaptivePlan:
    """The chosen two-level PEC configuration for a deployment."""

    k_snapshot: int
    k_persist: int
    checkpoint_interval: float  # iterations
    snapshot_seconds: float
    persist_seconds: float
    o_save_iterations: float  # per-checkpoint overhead, iteration units
    fully_overlapped: bool

    def __post_init__(self) -> None:
        if self.k_persist > self.k_snapshot:
            raise ValueError("k_persist must not exceed k_snapshot")


def choose_k_snapshot(
    num_experts: int,
    snapshot_seconds_of: Callable[[int], float],
    fb_seconds: float,
) -> int:
    """Largest ``K`` whose snapshot hides under F&B; 1 if none does.

    ``snapshot_seconds_of(k)`` must be non-decreasing in ``k`` (more
    experts can never be faster to copy), which lets us scan from the
    top.
    """
    if num_experts < 1:
        raise ValueError("num_experts must be >= 1")
    for k in range(num_experts, 0, -1):
        if snapshot_seconds_of(k) <= fb_seconds:
            return k
    return 1


def recommend_configuration(
    num_experts: int,
    fb_seconds: float,
    update_seconds: float,
    snapshot_seconds_of: Callable[[int], float],
    persist_seconds_of: Callable[[int], float],
    fault_rate_per_iteration: float,
    k_persist: int = 1,
) -> AdaptivePlan:
    """Apply Section 5.3's rules; see module docstring.

    ``fault_rate_per_iteration`` of zero yields an interval bound only
    by the persist phase (checkpoint as rarely as you like — we return
    the persist lower bound as the floor recommendation).
    """
    if fb_seconds <= 0 or update_seconds < 0:
        raise ValueError("invalid iteration durations")
    k_snapshot = choose_k_snapshot(num_experts, snapshot_seconds_of, fb_seconds)
    k_persist = min(k_persist, k_snapshot)
    snapshot_seconds = snapshot_seconds_of(k_snapshot)
    persist_seconds = persist_seconds_of(k_persist)
    iteration_seconds = fb_seconds + update_seconds
    o_save = save_overhead(snapshot_seconds, fb_seconds) / iteration_seconds

    persist_floor = persist_seconds / iteration_seconds
    if fault_rate_per_iteration > 0:
        # Young-Daly needs a nonzero saving cost; a fully-overlapped
        # snapshot still costs a small dispatch overhead in practice.
        effective_o_save = max(o_save, 0.01)
        young_daly = optimal_interval(effective_o_save, fault_rate_per_iteration)
    else:
        young_daly = persist_floor
    interval = max(persist_floor, young_daly, 1.0)

    return AdaptivePlan(
        k_snapshot=k_snapshot,
        k_persist=k_persist,
        checkpoint_interval=interval,
        snapshot_seconds=snapshot_seconds,
        persist_seconds=persist_seconds,
        o_save_iterations=o_save,
        fully_overlapped=snapshot_seconds <= fb_seconds,
    )


def recommend_for_deployment(
    deployment,
    fault_rate_per_iteration: float,
    k_persist: int = 1,
    sharding_policy=None,
) -> AdaptivePlan:
    """Convenience wrapper binding the rules to a simulator deployment."""
    from .config import ShardingPolicy

    policy = sharding_policy if sharding_policy is not None else ShardingPolicy.EE_AN
    from ..distsim.ckptsim import checkpoint_cost, pec_plan_for

    times = deployment.iteration_times()

    def snapshot_seconds_of(k: int) -> float:
        cost = checkpoint_cost(
            deployment.spec, deployment.topology, deployment.cluster, policy,
            pec_plan=pec_plan_for(deployment.spec, k),
        )
        return cost.snapshot_seconds

    def persist_seconds_of(k: int) -> float:
        cost = checkpoint_cost(
            deployment.spec, deployment.topology, deployment.cluster, policy,
            pec_plan=pec_plan_for(deployment.spec, max(k, 1), k),
        )
        return cost.persist_seconds

    return recommend_configuration(
        deployment.spec.num_experts,
        times.fb,
        times.update,
        snapshot_seconds_of,
        persist_seconds_of,
        fault_rate_per_iteration,
        k_persist=k_persist,
    )
