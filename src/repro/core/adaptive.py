"""Adaptive configuration of two-level PEC (Section 5.3).

Turns the paper's configuration rules into an API: given the durations a
deployment exhibits (F&B time, snapshot seconds per ``K_snapshot``,
persist seconds per ``K_persist``) and the cluster's fault rate, choose

* the largest ``K_snapshot`` whose snapshot fully hides under the next
  iteration's F&B (zero stall => minimal ``O_save``, maximal PLT
  protection from the memory tier);
* a small ``K_persist`` (the two-level recovery path absorbs its PLT);
* the checkpoint interval: at least the persist-phase lower bound, and
  otherwise the Young-Daly optimum for the measured ``O_save``.

The functions take plain duration callables so they work against the
simulator (``repro.distsim``) and against real measurements alike.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from .overhead import optimal_interval, save_overhead


@dataclass(frozen=True)
class AdaptivePlan:
    """The chosen two-level PEC configuration for a deployment."""

    k_snapshot: int
    k_persist: int
    checkpoint_interval: float  # iterations
    snapshot_seconds: float
    persist_seconds: float
    o_save_iterations: float  # per-checkpoint overhead, iteration units
    fully_overlapped: bool

    def __post_init__(self) -> None:
        if self.k_persist > self.k_snapshot:
            raise ValueError("k_persist must not exceed k_snapshot")


def choose_k_snapshot(
    num_experts: int,
    snapshot_seconds_of: Callable[[int], float],
    fb_seconds: float,
) -> int:
    """Largest ``K`` whose snapshot hides under F&B; 1 if none does.

    ``snapshot_seconds_of(k)`` must be non-decreasing in ``k`` (more
    experts can never be faster to copy), which lets us scan from the
    top.
    """
    if num_experts < 1:
        raise ValueError("num_experts must be >= 1")
    for k in range(num_experts, 0, -1):
        if snapshot_seconds_of(k) <= fb_seconds:
            return k
    return 1


def recommend_configuration(
    num_experts: int,
    fb_seconds: float,
    update_seconds: float,
    snapshot_seconds_of: Callable[[int], float],
    persist_seconds_of: Callable[[int], float],
    fault_rate_per_iteration: float,
    k_persist: int = 1,
) -> AdaptivePlan:
    """Apply Section 5.3's rules; see module docstring.

    ``fault_rate_per_iteration`` of zero yields an interval bound only
    by the persist phase (checkpoint as rarely as you like — we return
    the persist lower bound as the floor recommendation).
    """
    if fb_seconds <= 0 or update_seconds < 0:
        raise ValueError("invalid iteration durations")
    k_snapshot = choose_k_snapshot(num_experts, snapshot_seconds_of, fb_seconds)
    k_persist = min(k_persist, k_snapshot)
    snapshot_seconds = snapshot_seconds_of(k_snapshot)
    persist_seconds = persist_seconds_of(k_persist)
    iteration_seconds = fb_seconds + update_seconds
    o_save = save_overhead(snapshot_seconds, fb_seconds) / iteration_seconds

    persist_floor = persist_seconds / iteration_seconds
    if fault_rate_per_iteration > 0:
        # Young-Daly needs a nonzero saving cost; a fully-overlapped
        # snapshot still costs a small dispatch overhead in practice.
        effective_o_save = max(o_save, 0.01)
        young_daly = optimal_interval(effective_o_save, fault_rate_per_iteration)
    else:
        young_daly = persist_floor
    interval = max(persist_floor, young_daly, 1.0)

    return AdaptivePlan(
        k_snapshot=k_snapshot,
        k_persist=k_persist,
        checkpoint_interval=interval,
        snapshot_seconds=snapshot_seconds,
        persist_seconds=persist_seconds,
        o_save_iterations=o_save,
        fully_overlapped=snapshot_seconds <= fb_seconds,
    )


def recommend_for_deployment(
    deployment,
    fault_rate_per_iteration: float,
    k_persist: int = 1,
    sharding_policy=None,
) -> AdaptivePlan:
    """Convenience wrapper binding the rules to a simulator deployment."""
    from .config import ShardingPolicy

    policy = sharding_policy if sharding_policy is not None else ShardingPolicy.EE_AN
    from ..distsim.ckptsim import checkpoint_cost, pec_plan_for

    times = deployment.iteration_times()

    def snapshot_seconds_of(k: int) -> float:
        cost = checkpoint_cost(
            deployment.spec, deployment.topology, deployment.cluster, policy,
            pec_plan=pec_plan_for(deployment.spec, k),
        )
        return cost.snapshot_seconds

    def persist_seconds_of(k: int) -> float:
        cost = checkpoint_cost(
            deployment.spec, deployment.topology, deployment.cluster, policy,
            pec_plan=pec_plan_for(deployment.spec, max(k, 1), k),
        )
        return cost.persist_seconds

    return recommend_configuration(
        deployment.spec.num_experts,
        times.fb,
        times.update,
        snapshot_seconds_of,
        persist_seconds_of,
        fault_rate_per_iteration,
        k_persist=k_persist,
    )


# ---------------------------------------------------------------------------
# Online adaptation: estimate the fault rate from the observed fault
# stream and retune the plan live, instead of planning once from a rate
# someone measured last quarter.
# ---------------------------------------------------------------------------


class OnlineFaultRateEstimator:
    """Windowed maximum-likelihood estimate of a Poisson fault rate.

    Faults are observed as a point process; over a trailing window of
    ``window`` time units holding ``k`` events the MLE of the rate is
    simply ``k / window``.  Two practicalities:

    * Before ``min_events`` faults have ever been seen, the estimate
      falls back to ``prior_rate`` — retuning off one unlucky fault
      would thrash the interval.
    * The effective window is clamped to the time actually observed
      (``now - start``), so early in a run the denominator isn't the
      full window we haven't lived through yet.
    """

    def __init__(
        self,
        window: float = 500.0,
        min_events: int = 3,
        prior_rate: float = 0.0,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if min_events < 1:
            raise ValueError("min_events must be >= 1")
        if prior_rate < 0:
            raise ValueError("prior_rate must be >= 0")
        self.window = float(window)
        self.min_events = int(min_events)
        self.prior_rate = float(prior_rate)
        self._events: Deque[float] = deque()
        self._total_events = 0
        self._start: Optional[float] = None
        self._last: float = 0.0

    @property
    def total_events(self) -> int:
        """Faults ever observed (not just those still in the window)."""
        return self._total_events

    def observe_start(self, now: float) -> None:
        """Mark the beginning of observation (optional; the first call
        to :meth:`observe_fault` or :meth:`rate` also anchors it)."""
        if self._start is None:
            self._start = float(now)
        self._last = max(self._last, float(now))

    def observe_fault(self, now: float) -> None:
        """Record one fault at absolute time ``now`` (non-decreasing)."""
        now = float(now)
        if self._start is None:
            self._start = now
        if now < self._last:
            raise ValueError(
                f"fault times must be non-decreasing ({now} < {self._last})"
            )
        self._last = now
        self._events.append(now)
        self._total_events += 1
        self._evict(now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._events and self._events[0] < cutoff:
            self._events.popleft()

    def rate(self, now: float) -> float:
        """MLE fault rate (events per time unit) as of ``now``."""
        now = float(now)
        if self._start is None:
            self._start = now
        self._last = max(self._last, now)
        self._evict(now)
        if self._total_events < self.min_events:
            return self.prior_rate
        observed = max(now - self._start, 1e-12)
        effective_window = min(self.window, observed)
        if effective_window <= 0:
            return self.prior_rate
        return len(self._events) / effective_window


@dataclass(frozen=True)
class OnlineDecision:
    """One retuning decision emitted by the online controller."""

    time: float
    fault_rate: float
    checkpoint_interval: float
    k_persist: int
    persist_tier: str  # "two-level" or "remote-only"
    faults_observed: int

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "fault_rate": self.fault_rate,
            "checkpoint_interval": self.checkpoint_interval,
            "k_persist": self.k_persist,
            "persist_tier": self.persist_tier,
            "faults_observed": self.faults_observed,
        }


class OnlineAdaptiveController:
    """Close the loop: observed faults in, retuned PEC knobs out.

    The controller owns an :class:`OnlineFaultRateEstimator` and maps its
    rate estimate onto the three knobs the paper tunes statically:

    * **checkpoint interval** — Young-Daly for the estimated rate
      (``optimal_interval``), clamped to ``[min_interval, max_interval]``;
    * **dynamic k** — ``k_persist`` grows monotonically with the rate:
      each doubling of the rate past ``k_rate_knee`` adds one replica,
      capped at ``k_persist_max``;
    * **persist tier** — "two-level" (keep the local tier hot) once the
      expected recovery saving ``rate * (remote_recovery -
      local_recovery)`` exceeds the local tier's carrying cost,
      otherwise "remote-only".

    Deliberately duck-typed: ``observe_fault(t)`` / ``decide(t)`` /
    ``checkpoint_interval(t)`` is all the chaos campaign and the
    ``distsim`` adaptive simulation need.
    """

    def __init__(
        self,
        o_save: float,
        estimator: Optional[OnlineFaultRateEstimator] = None,
        min_interval: float = 1.0,
        max_interval: float = 10_000.0,
        k_persist_max: int = 4,
        k_rate_knee: float = 1e-3,
        local_recovery_cost: float = 1.0,
        remote_recovery_cost: float = 10.0,
        local_tier_cost: float = 0.01,
    ) -> None:
        if o_save < 0:
            raise ValueError("o_save must be >= 0")
        if min_interval <= 0 or max_interval < min_interval:
            raise ValueError("need 0 < min_interval <= max_interval")
        if k_persist_max < 1:
            raise ValueError("k_persist_max must be >= 1")
        if k_rate_knee <= 0:
            raise ValueError("k_rate_knee must be positive")
        if remote_recovery_cost < local_recovery_cost:
            raise ValueError("remote recovery must cost at least local recovery")
        self.o_save = float(o_save)
        self.estimator = estimator or OnlineFaultRateEstimator()
        self.min_interval = float(min_interval)
        self.max_interval = float(max_interval)
        self.k_persist_max = int(k_persist_max)
        self.k_rate_knee = float(k_rate_knee)
        self.local_recovery_cost = float(local_recovery_cost)
        self.remote_recovery_cost = float(remote_recovery_cost)
        self.local_tier_cost = float(local_tier_cost)
        self.decisions: List[OnlineDecision] = []

    def observe_fault(self, now: float) -> None:
        self.estimator.observe_fault(now)

    def _interval_for(self, rate: float) -> float:
        if rate <= 0:
            return self.max_interval
        # Young-Daly needs a nonzero saving cost (same floor as the
        # static recommendation above).
        interval = optimal_interval(max(self.o_save, 0.01), rate)
        if math.isinf(interval):
            return self.max_interval
        return min(self.max_interval, max(self.min_interval, interval))

    def _k_for(self, rate: float) -> int:
        if rate <= self.k_rate_knee:
            return 1
        extra = int(math.floor(math.log2(rate / self.k_rate_knee))) + 1
        return min(self.k_persist_max, 1 + max(extra, 0))

    def _tier_for(self, rate: float) -> str:
        saving = rate * (self.remote_recovery_cost - self.local_recovery_cost)
        return "two-level" if saving > self.local_tier_cost else "remote-only"

    def decide(self, now: float) -> OnlineDecision:
        """Retune all knobs for the rate estimated at ``now``."""
        rate = self.estimator.rate(now)
        decision = OnlineDecision(
            time=float(now),
            fault_rate=rate,
            checkpoint_interval=self._interval_for(rate),
            k_persist=self._k_for(rate),
            persist_tier=self._tier_for(rate),
            faults_observed=self.estimator.total_events,
        )
        self.decisions.append(decision)
        return decision

    def checkpoint_interval(self, now: float) -> float:
        """Just the interval knob — the hot query in the simulator."""
        return self._interval_for(self.estimator.rate(now))
