"""Recovery-consistency verification.

Operational checkpoint systems verify that what recovery *would* restore
matches what training believes it has — catching silent corruption, key
drift after refactors, and store/model divergence before a fault makes
them fatal.  :func:`verify_consistency` compares the live model +
optimizer state against the freshest durable entries and reports, per
population, whether the stored versions are byte-identical, stale-but-
expected (PEC), or inconsistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..ckpt.manifest import expert_entry_key, non_expert_entry_key
from ..models.serial import ExpertKey
from .manager import MoCCheckpointManager


@dataclass
class EntryReport:
    """Verification outcome for one parameter."""

    name: str
    status: str  # "fresh" | "stale" | "missing" | "mismatch"
    stamp: Optional[int] = None


@dataclass
class ConsistencyReport:
    """Aggregate verification outcome."""

    non_expert: List[EntryReport] = field(default_factory=list)
    expert: Dict[ExpertKey, List[EntryReport]] = field(default_factory=dict)

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for report in self.non_expert:
            totals[report.status] = totals.get(report.status, 0) + 1
        for reports in self.expert.values():
            for report in reports:
                totals[report.status] = totals.get(report.status, 0) + 1
        return totals

    @property
    def ok(self) -> bool:
        """True when nothing is missing or mismatched.

        ``stale`` entries are expected under PEC — they are precisely the
        unselected experts — so they do not fail verification.
        """
        counts = self.counts()
        return counts.get("missing", 0) == 0 and counts.get("mismatch", 0) == 0


def _compare(
    store, entry_key: str, live: np.ndarray, field_name: str, rtol: float
) -> str:
    if not store.has(entry_key):
        return "missing"
    stored = store.get(entry_key)
    if field_name not in stored:
        return "mismatch"
    value = np.asarray(stored[field_name], dtype=np.float64)
    if value.shape != live.shape:
        return "mismatch"
    if np.allclose(value, live, rtol=rtol, atol=1e-12):
        return "fresh"
    return "stale"


def verify_consistency(
    manager: MoCCheckpointManager, rtol: float = 1e-9
) -> ConsistencyReport:
    """Compare live state against the persist tier.

    Non-expert parameters must be *fresh or stale-by-one-interval*
    (they are fully saved each checkpoint; between checkpoints the live
    state is ahead of the store, which reads as "stale" here and is
    fine).  Anything ``missing`` or shape-``mismatch``ed indicates real
    damage.  With a precision codec, pass the codec's round-trip
    tolerance as ``rtol``.
    """
    store = manager.disk_store
    report = ConsistencyReport()
    for name in manager._non_expert_params:  # noqa: SLF001 - same package
        entry_key = non_expert_entry_key(name)
        status = _compare(
            store, entry_key, manager.optimizer.params[name].data, "weights", rtol
        )
        stamp = store.stamp_of(entry_key) if store.has(entry_key) else None
        report.non_expert.append(EntryReport(name=name, status=status, stamp=stamp))

    for expert_key, names in manager._expert_params.items():  # noqa: SLF001
        reports: List[EntryReport] = []
        for name in names:
            entry_key = expert_entry_key(expert_key, name) + ":w"
            status = _compare(
                store, entry_key, manager.optimizer.params[name].data, "weights", rtol
            )
            stamp = store.stamp_of(entry_key) if store.has(entry_key) else None
            reports.append(EntryReport(name=name, status=status, stamp=stamp))
        report.expert[expert_key] = reports
    return report
