"""Fully sharded checkpointing strategies (Section 4, Figure 7/10).

The planner assigns checkpoint *work* — bytes to serialize and write — to
distributed ranks.  It understands the ZeRO-2 DP + EP layout of Figure 6:

* Optimizer states are already partitioned (ZeRO-2): every rank persists
  its own shard regardless of policy.  The non-expert optimizer is
  partitioned across all DP ranks; each expert's optimizer is partitioned
  across that expert's replicas (one per EP group).
* Model *parameters* are replicated, so a policy decides which rank saves
  which copy:

  - ``BASELINE`` (Megatron-DeepSpeed, Figure 7(a)): rank 0 saves all
    non-expert parameters; the owner ranks in EP group 0 save expert
    parameters.
  - ``EE``: expert parameters split equally across EP groups (Figure
    7(b), expert half on each group's replica).
  - ``EE_EN``: EE plus greedy equal sharding of non-expert layers over
    all DP ranks.
  - ``EE_AN``: EE plus *adaptive* sharding — the greedy allocator seeds
    each rank with its PEC expert workload so non-expert layers fill the
    spare capacity (Section 4.3).

The same planner is used by the discrete-event simulator (GB-scale model
specs, Figures 10-13) and by the real trainer (tiny models), so tests on
one validate the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..models.serial import ExpertKey
from .config import ShardingPolicy
from .pec import PECPlan


@dataclass(frozen=True)
class ShardTopology:
    """The DP+EP rank layout (Table 2's Cases are instances of this).

    ``d_dp`` ranks total; EP groups are contiguous blocks of ``d_ep``
    ranks; each rank in an EP group owns ``num_experts / d_ep``
    consecutive experts of every MoE layer.
    """

    d_dp: int
    d_ep: int
    gpus_per_node: int = 8

    def __post_init__(self) -> None:
        if self.d_dp < 1 or self.d_ep < 1:
            raise ValueError("parallel degrees must be >= 1")
        if self.d_dp % self.d_ep != 0:
            raise ValueError(f"d_dp={self.d_dp} must be a multiple of d_ep={self.d_ep}")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    @property
    def num_ranks(self) -> int:
        return self.d_dp

    @property
    def num_ep_groups(self) -> int:
        return self.d_dp // self.d_ep

    @property
    def num_nodes(self) -> int:
        return (self.d_dp + self.gpus_per_node - 1) // self.gpus_per_node

    def ep_group_of(self, rank: int) -> int:
        return rank // self.d_ep

    def ep_rank_of(self, rank: int) -> int:
        return rank % self.d_ep

    def node_of(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def experts_per_rank(self, num_experts: int) -> int:
        if num_experts % self.d_ep != 0:
            raise ValueError(
                f"num_experts={num_experts} must be a multiple of d_ep={self.d_ep}"
            )
        return num_experts // self.d_ep

    def owner_rank(self, ep_group: int, expert: int, num_experts: int) -> int:
        """Global rank holding ``expert`` inside ``ep_group`` (contiguous)."""
        per_rank = self.experts_per_rank(num_experts)
        ep_rank = expert // per_rank
        return ep_group * self.d_ep + ep_rank

    def ranks_hosting_expert(self, expert: int, num_experts: int) -> List[int]:
        """All replicas of ``expert`` — one rank per EP group."""
        return [
            self.owner_rank(group, expert, num_experts)
            for group in range(self.num_ep_groups)
        ]


@dataclass
class CheckpointWorkload:
    """Byte sizes of everything a checkpoint must write.

    Weight entries are *replicated* state needing a policy; optimizer
    entries are per-parameter bytes that ZeRO-2 has already partitioned.
    Expert byte fields are per single expert (layer instance).
    """

    non_expert_param_items: List[Tuple[str, int]]
    expert_param_bytes: int
    num_moe_layers: int
    num_experts: int
    non_expert_master_bytes: int
    non_expert_moment_bytes: int
    expert_master_bytes: int
    expert_moment_bytes: int
    other_bytes: int = 0

    def all_expert_keys(self) -> List[ExpertKey]:
        return [
            ExpertKey(layer, expert)
            for layer in range(self.num_moe_layers)
            for expert in range(self.num_experts)
        ]

    @property
    def total_non_expert_param_bytes(self) -> int:
        return sum(size for _, size in self.non_expert_param_items)


@dataclass(frozen=True)
class ShardItem:
    """One unit of checkpoint work assigned to a rank."""

    key: str
    nbytes: int
    kind: str  # "ne_param" | "expert_param" | "ne_opt" | "expert_opt" | "other"


@dataclass
class ShardPlan:
    """Per-rank checkpoint assignments with workload queries."""

    topology: ShardTopology
    assignments: Dict[int, List[ShardItem]] = field(default_factory=dict)

    def add(self, rank: int, item: ShardItem) -> None:
        if not 0 <= rank < self.topology.num_ranks:
            raise ValueError(f"rank {rank} outside topology of {self.topology.num_ranks}")
        self.assignments.setdefault(rank, []).append(item)

    def rank_bytes(self, rank: int) -> int:
        return sum(item.nbytes for item in self.assignments.get(rank, []))

    def per_rank_bytes(self) -> List[int]:
        return [self.rank_bytes(r) for r in range(self.topology.num_ranks)]

    def bottleneck_rank(self) -> int:
        per_rank = self.per_rank_bytes()
        return int(max(range(len(per_rank)), key=per_rank.__getitem__))

    def bottleneck_bytes(self) -> int:
        return max(self.per_rank_bytes())

    def total_bytes(self) -> int:
        return sum(self.per_rank_bytes())

    def node_bytes(self, node: int) -> int:
        return sum(
            self.rank_bytes(r)
            for r in range(self.topology.num_ranks)
            if self.topology.node_of(r) == node
        )

    def imbalance(self) -> float:
        """Bottleneck / mean — 1.0 is perfectly balanced."""
        per_rank = self.per_rank_bytes()
        mean = sum(per_rank) / len(per_rank)
        return max(per_rank) / mean if mean > 0 else 1.0


def _selected_experts(
    workload: CheckpointWorkload, pec_plan: Optional[PECPlan], component: str
) -> List[ExpertKey]:
    """Experts whose ``component`` ("weights" | "moments") gets saved."""
    if pec_plan is None:
        return workload.all_expert_keys()
    restricted = (
        pec_plan.apply_to_weights if component == "weights" else pec_plan.apply_to_moments
    )
    if not restricted:
        return workload.all_expert_keys()
    return sorted(pec_plan.persist_experts)


def _assign_optimizer_shards(
    plan: ShardPlan,
    workload: CheckpointWorkload,
    pec_plan: Optional[PECPlan],
) -> None:
    """ZeRO-2 optimizer shards: every rank saves its own partition."""
    topo = plan.topology
    ne_opt = workload.non_expert_master_bytes + workload.non_expert_moment_bytes
    per_rank_ne = ne_opt // topo.num_ranks
    for rank in range(topo.num_ranks):
        if per_rank_ne > 0:
            plan.add(rank, ShardItem(f"ne_opt/shard{rank}", per_rank_ne, "ne_opt"))

    moment_experts = set(_selected_experts(workload, pec_plan, "moments"))
    groups = topo.num_ep_groups
    for key in workload.all_expert_keys():
        master_share = workload.expert_master_bytes // groups
        moment_share = (
            workload.expert_moment_bytes // groups if key in moment_experts else 0
        )
        nbytes = master_share + moment_share
        if nbytes <= 0:
            continue
        for group in range(groups):
            rank = topo.owner_rank(group, key.expert, workload.num_experts)
            plan.add(
                rank,
                ShardItem(
                    f"expert_opt/l{key.moe_layer}e{key.expert}/g{group}", nbytes, "expert_opt"
                ),
            )


def _assign_expert_weights(
    plan: ShardPlan,
    workload: CheckpointWorkload,
    pec_plan: Optional[PECPlan],
    equal_sharding: bool,
) -> None:
    """Expert weight copies: EP-group-0 only (baseline) or split (EE)."""
    topo = plan.topology
    selected = _selected_experts(workload, pec_plan, "weights")
    groups = topo.num_ep_groups if equal_sharding else 1
    share = workload.expert_param_bytes // groups
    for key in selected:
        for group in range(groups):
            rank = topo.owner_rank(group, key.expert, workload.num_experts)
            plan.add(
                rank,
                ShardItem(
                    f"expert_w/l{key.moe_layer}e{key.expert}/g{group}", share, "expert_param"
                ),
            )


def _greedy_placement(
    num_ranks: int,
    items: Sequence[Tuple[str, int]],
    initial_loads: Optional[Dict[int, int]] = None,
) -> Dict[int, List[Tuple[str, int]]]:
    """Longest-processing-time greedy: largest item to least-loaded rank."""
    loads = {rank: 0 for rank in range(num_ranks)}
    if initial_loads:
        for rank, load in initial_loads.items():
            loads[rank] = load
    placement: Dict[int, List[Tuple[str, int]]] = {rank: [] for rank in range(num_ranks)}
    for name, size in sorted(items, key=lambda pair: (-pair[1], pair[0])):
        target = min(loads, key=lambda r: (loads[r], r))
        placement[target].append((name, size))
        loads[target] += size
    return placement


def _apply_placement(plan: ShardPlan, placement: Dict[int, List[Tuple[str, int]]]) -> None:
    for rank, items in placement.items():
        for name, size in items:
            plan.add(rank, ShardItem(f"ne_w/{name}", size, "ne_param"))


def _greedy_assign(
    plan: ShardPlan,
    items: Sequence[Tuple[str, int]],
    initial_loads: Optional[Dict[int, int]] = None,
) -> None:
    _apply_placement(
        plan, _greedy_placement(plan.topology.num_ranks, items, initial_loads)
    )


def plan_checkpoint_shards(
    topology: ShardTopology,
    workload: CheckpointWorkload,
    policy: ShardingPolicy,
    pec_plan: Optional[PECPlan] = None,
) -> ShardPlan:
    """Build the per-rank checkpoint work assignment for one checkpoint.

    ``pec_plan`` restricts the saved experts; ``None`` means full saving.
    """
    plan = ShardPlan(topology=topology)
    _assign_optimizer_shards(plan, workload, pec_plan)

    if policy is ShardingPolicy.BASELINE:
        for name, size in workload.non_expert_param_items:
            plan.add(0, ShardItem(f"ne_w/{name}", size, "ne_param"))
        _assign_expert_weights(plan, workload, pec_plan, equal_sharding=False)
        if workload.other_bytes:
            plan.add(0, ShardItem("other", workload.other_bytes, "other"))
        return plan

    _assign_expert_weights(plan, workload, pec_plan, equal_sharding=True)
    # Metadata (RNG states, counters) goes to rank 0 up front so the
    # adaptive allocator sees the true starting loads.
    if workload.other_bytes:
        plan.add(0, ShardItem("other", workload.other_bytes, "other"))

    if policy is ShardingPolicy.EE:
        # EE alone keeps the baseline's rank-0 non-expert placement.
        for name, size in workload.non_expert_param_items:
            plan.add(0, ShardItem(f"ne_w/{name}", size, "ne_param"))
    elif policy is ShardingPolicy.EE_EN:
        # Equal sharding: balance non-expert layers in isolation — the
        # pattern is fixed at startup, ignoring the rotating PEC load.
        _greedy_assign(plan, workload.non_expert_param_items)
    elif policy is ShardingPolicy.EE_AN:
        # Adaptive sharding: evaluate two candidate static patterns — the
        # greedy allocator seeded with each rank's expert workload, and
        # the load-blind equal pattern — and keep whichever yields the
        # smaller bottleneck.  Both are fixed at startup (Section 4.3);
        # taking the min makes "adaptive never worse than equal" hold by
        # construction rather than by LPT luck.
        current = {rank: plan.rank_bytes(rank) for rank in range(topology.num_ranks)}
        candidates = (
            _greedy_placement(topology.num_ranks, workload.non_expert_param_items, current),
            _greedy_placement(topology.num_ranks, workload.non_expert_param_items),
        )

        def bottleneck_with(placement: Dict[int, List[Tuple[str, int]]]) -> int:
            return max(
                current[rank] + sum(size for _, size in placement[rank])
                for rank in range(topology.num_ranks)
            )

        _apply_placement(plan, min(candidates, key=bottleneck_with))
    else:
        raise ValueError(f"unhandled sharding policy {policy!r}")

    return plan


def pec_imbalance_condition(
    k_pec: int, num_moe_layers: int, d_ep: int, d_dp: int
) -> bool:
    """Eq. 9: whether PEC yields an imbalanced expert checkpoint workload."""
    total_selected = k_pec * num_moe_layers
    if total_selected % d_ep != 0:
        return True
    groups = d_dp // d_ep
    return (total_selected // d_ep) % groups != 0
