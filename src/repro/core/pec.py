"""The Partial Experts Checkpointing planner (Section 3).

``PECPlanner`` turns a :class:`~repro.core.config.PECConfig` plus the
model's MoE topology into concrete *plans*: for checkpoint number ``c``,
which experts go into the GPU->CPU snapshot and which of those are
persisted to storage.  It also exposes the paper's size arithmetic
(Eqs. 5-6) so the simulator and the benches share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

import numpy as np

from ..models.serial import ExpertKey
from .config import PECConfig, SelectionStrategy
from .selection import ExpertSelector, make_selector


@dataclass(frozen=True)
class PECPlan:
    """The expert-selection outcome for one checkpointing event.

    ``snapshot_experts`` are copied to CPU memory; ``persist_experts``
    (a subset) continue to persistent storage.  The component flags say
    whether PEC restricts weights and/or Adam moments — a component not
    restricted is saved for *all* experts, not just the selected ones.
    """

    checkpoint_index: int
    snapshot_experts: FrozenSet[ExpertKey]
    persist_experts: FrozenSet[ExpertKey]
    apply_to_weights: bool
    apply_to_moments: bool

    def __post_init__(self) -> None:
        if not self.persist_experts <= self.snapshot_experts:
            raise ValueError("persist experts must be a subset of snapshot experts")

    def snapshot_includes(self, key: ExpertKey) -> bool:
        return key in self.snapshot_experts

    def persist_includes(self, key: ExpertKey) -> bool:
        return key in self.persist_experts


class PECPlanner:
    """Produces per-checkpoint :class:`PECPlan` objects.

    Parameters
    ----------
    config:
        The PEC configuration (k values, strategy, component flags).
    num_moe_layers, num_experts:
        The model's MoE topology.
    """

    def __init__(self, config: PECConfig, num_moe_layers: int, num_experts: int) -> None:
        self.config = config
        self.num_moe_layers = num_moe_layers
        self.num_experts = num_experts
        self._selector: ExpertSelector = make_selector(
            config.selection, num_moe_layers, num_experts
        )
        self._k_snapshot = min(config.k_snapshot, num_experts)
        self._k_persist = min(config.k_persist, num_experts)

    # ------------------------------------------------------------------
    @property
    def k_snapshot(self) -> int:
        return self._k_snapshot

    @property
    def k_persist(self) -> int:
        return self._k_persist

    def set_k(self, k_snapshot: Optional[int] = None, k_persist: Optional[int] = None) -> None:
        """Adjust K values at runtime (used by Dynamic-K)."""
        if k_snapshot is not None:
            self._k_snapshot = min(max(1, k_snapshot), self.num_experts)
        if k_persist is not None:
            self._k_persist = min(max(1, k_persist), self.num_experts)
        if self._k_persist > self._k_snapshot:
            self._k_persist = self._k_snapshot

    def plan(
        self,
        checkpoint_index: int,
        unsaved_tokens: Optional[np.ndarray] = None,
    ) -> PECPlan:
        """Build the plan for checkpoint ``checkpoint_index``.

        Persist-PEC selects from within the snapshot set (Section 5.1):
        the selector is asked for ``k_persist`` experts first, then the
        snapshot set is grown to ``k_snapshot`` with the same strategy, so
        the persisted experts are always snapshotted too.
        """
        if self.config.selection is SelectionStrategy.FULL:
            every = self._selector.select(checkpoint_index, self.num_experts)
            return PECPlan(
                checkpoint_index=checkpoint_index,
                snapshot_experts=frozenset(every),
                persist_experts=frozenset(every),
                apply_to_weights=self.config.apply_to_weights,
                apply_to_moments=self.config.apply_to_moments,
            )
        snapshot = self._selector.select(
            checkpoint_index, self._k_snapshot, unsaved_tokens=unsaved_tokens
        )
        persist = self._selector.select(
            checkpoint_index, self._k_persist, unsaved_tokens=unsaved_tokens
        )
        # With rotation offsets the k_persist set is a prefix of the
        # k_snapshot set per layer for the sequential strategy; for other
        # strategies enforce the subset property explicitly.
        if not persist <= snapshot:
            persist = self._shrink_to_subset(persist, snapshot)
        return PECPlan(
            checkpoint_index=checkpoint_index,
            snapshot_experts=frozenset(snapshot),
            persist_experts=frozenset(persist),
            apply_to_weights=self.config.apply_to_weights,
            apply_to_moments=self.config.apply_to_moments,
        )

    def _shrink_to_subset(
        self, persist: Set[ExpertKey], snapshot: Set[ExpertKey]
    ) -> Set[ExpertKey]:
        """Force persist ⊆ snapshot, replacing strays per layer."""
        result: Set[ExpertKey] = set(persist & snapshot)
        per_layer_needed: Dict[int, int] = {}
        for layer in range(self.num_moe_layers):
            have = sum(1 for key in result if key.moe_layer == layer)
            per_layer_needed[layer] = self._k_persist - have
        for layer, needed in per_layer_needed.items():
            if needed <= 0:
                continue
            candidates = sorted(
                key for key in snapshot if key.moe_layer == layer and key not in result
            )
            result.update(candidates[:needed])
        return result

    # ------------------------------------------------------------------
    # Size arithmetic (Eqs. 5-6)
    # ------------------------------------------------------------------
    def checkpoint_fraction(self, k: Optional[int] = None, expert_fraction: float = 0.866) -> float:
        """``C_pec / C_full`` for uniform per-parameter bytes (Eq. 6 / Eq. 5).

        ``expert_fraction`` is ``P_e / (P_e + P_ne)``; the default matches
        GPT-350M-16E.  This is the *uniform-bytes* ratio; component-aware
        ratios (W/O variants) live in ``repro.distsim.modelspec``.
        """
        k = self._k_persist if k is None else k
        if not 1 <= k <= self.num_experts:
            raise ValueError(f"k={k} out of range")
        return (1.0 - expert_fraction) + expert_fraction * k / self.num_experts


def full_save_cycle_length(num_experts: int, k: int) -> int:
    """Checkpoints needed for sequential selection to cover every expert."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return int(np.ceil(num_experts / k))
