"""Analytic fault-tolerance overhead model (Eqs. 3-4 and 10-16).

Quantifies the total checkpoint overhead of a training run from the
per-checkpoint saving overhead, the checkpoint interval, the fault rate
and the restart cost — and derives the adaptive-configuration rules of
Section 5.3 (optimal interval, MoC-vs-Full comparison).

Times are in whatever unit the caller uses consistently (we use seconds
for wall-clock quantities and iterations for intervals; ``iteration_time``
converts between them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


def save_overhead(t_snapshot: float, t_fb: float) -> float:
    """Eq. 10: snapshot overhead beyond what F&B can overlap.

    The asynchronous snapshot hides behind the next iteration's forward
    and backward passes; only the excess stalls training.
    """
    if t_snapshot < 0 or t_fb < 0:
        raise ValueError("durations must be non-negative")
    return max(t_snapshot - t_fb, 0.0)


def expected_faults(fault_rate: float, total_iterations: int) -> float:
    """Eq. 11: N_fault ~= lambda * I_total."""
    if fault_rate < 0 or total_iterations < 0:
        raise ValueError("fault_rate and total_iterations must be non-negative")
    return fault_rate * total_iterations


@dataclass(frozen=True)
class OverheadInputs:
    """Everything Eq. 12/13 needs for one checkpointing method."""

    o_save: float  # per-checkpoint overhead, in iteration-time units
    i_ckpt: float  # checkpoint interval, iterations
    o_restart: float  # restart cost per fault, iteration-time units
    fault_rate: float  # faults per iteration (lambda)
    total_iterations: int

    def __post_init__(self) -> None:
        if self.i_ckpt <= 0:
            raise ValueError("i_ckpt must be positive")
        if min(self.o_save, self.o_restart, self.fault_rate) < 0:
            raise ValueError("costs must be non-negative")
        if self.total_iterations < 0:
            raise ValueError("total_iterations must be non-negative")


def total_overhead(inputs: OverheadInputs) -> float:
    """Eq. 12/13: O_ckpt ~= O_save * I_total/I_ckpt + lambda*I_total*(O_restart + I_ckpt/2)."""
    saving = inputs.o_save * inputs.total_iterations / inputs.i_ckpt
    faults = expected_faults(inputs.fault_rate, inputs.total_iterations)
    return saving + faults * (inputs.o_restart + inputs.i_ckpt / 2.0)


def optimal_interval(o_save: float, fault_rate: float) -> float:
    """Interval minimising Eq. 13: ``I* = sqrt(2 * O_save / lambda)``.

    Derived by setting d/dI of ``O_save/I + lambda*I/2`` (per-iteration
    overhead) to zero — the Young/Daly optimum for our cost model.
    """
    if o_save < 0:
        raise ValueError("o_save must be non-negative")
    if fault_rate <= 0:
        return math.inf
    return math.sqrt(2.0 * o_save / fault_rate)


def moc_beats_full(moc: OverheadInputs, full: OverheadInputs) -> bool:
    """Eq. 16's condition (restart terms cancel; Eq. 14-15 reduction).

    Both sides must describe the same run (same fault rate and length).
    """
    if moc.fault_rate != full.fault_rate or moc.total_iterations != full.total_iterations:
        raise ValueError("comparisons require identical fault environments")
    lhs = moc.o_save / moc.i_ckpt + moc.fault_rate * moc.i_ckpt / 2.0
    rhs = full.o_save / full.i_ckpt + full.fault_rate * full.i_ckpt / 2.0
    return lhs < rhs


def equal_ratio_interval(o_save_moc: float, o_save_full: float, i_ckpt_full: float) -> float:
    """Section 6.2.5 strategy (2): shrink the interval to keep
    ``O_save / I_ckpt`` constant — the lost-progress term then shrinks
    proportionally, reducing total overhead.
    """
    if o_save_full <= 0:
        raise ValueError("o_save_full must be positive")
    if o_save_moc < 0 or i_ckpt_full <= 0:
        raise ValueError("invalid inputs")
    return i_ckpt_full * o_save_moc / o_save_full


@dataclass(frozen=True)
class OverheadBreakdown:
    """Readable decomposition of the total overhead."""

    saving: float
    lost_progress: float
    restarts: float

    @property
    def total(self) -> float:
        return self.saving + self.lost_progress + self.restarts


def overhead_breakdown(inputs: OverheadInputs) -> OverheadBreakdown:
    faults = expected_faults(inputs.fault_rate, inputs.total_iterations)
    return OverheadBreakdown(
        saving=inputs.o_save * inputs.total_iterations / inputs.i_ckpt,
        lost_progress=faults * inputs.i_ckpt / 2.0,
        restarts=faults * inputs.o_restart,
    )
