"""MoCCheckpointManager — the system's orchestration layer.

Glues PEC planning, the two storage tiers, PLT tracking, Dynamic-K and
recovery into the interface the trainer uses:

* :meth:`note_routing`   — feed per-step routing counts (PLT bookkeeping)
* :meth:`maybe_checkpoint` / :meth:`checkpoint` — run a two-level save
* :meth:`recover`        — restore model + optimizer state after a fault

State layout: every non-expert parameter maps to one entry carrying all
components; every expert parameter maps to *two* entries — a weights
entry and an optimizer entry — so the "W" / "O" PEC variants of Table 3
can stale them independently.  Entries are only rewritten when their
component is selected, so the stores naturally retain the last-saved
version for stale experts (see DESIGN.md for how this relates to the
paper's byte accounting, which is handled in ``repro.distsim``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from ..ckpt.async_writer import AsyncWriteBackend
from ..ckpt.backend import CheckpointBackend, make_backend
from ..ckpt.serializer import PayloadFrames, PipelineMeters
from ..obs import Observer
from ..obs.trace import span as _span
from ..ckpt.codec import PrecisionCodec
from ..ckpt.kvstore import InMemoryKVStore
from ..ckpt.manifest import (
    CheckpointManifest,
    ManifestRecord,
    expert_entry_key,
    meta_entry_key,
    non_expert_entry_key,
)
from ..ckpt.restore import ParallelRestorer, ReadRequest, RestoreStats
from ..ckpt.tiered import TieredBackend
from ..models.optim import Adam
from ..models.serial import ExpertKey, expert_param_names, non_expert_param_names
from .config import MoCConfig, SelectionStrategy
from .pec import PECPlan, PECPlanner
from .plt import PERSIST_TIER, SNAPSHOT_TIER, PLTTracker
from .recovery import (
    RecoveryPlan,
    build_recovery_plan,
    default_expert_placement,
    placement_from_topology,
)
from .reshard import (
    ReshardPlan,
    TOPOLOGY_META_NAME,
    load_saved_topology,
    plan_reshard,
    reshard_read_requests,
    topology_meta_entry,
)
from .selection import DynamicKController
from .sharding import ShardTopology


@dataclass(frozen=True)
class SaveProfile:
    """Timing + pipeline-meter breakdown of one save call.

    Meter fields are *deltas* over the save (taken from the manager's
    :class:`~repro.ckpt.serializer.PipelineMeters`), so
    ``bytes_hashed / bytes_serialized`` is that save's hash passes per
    payload byte (1.0 on the single-pass path) and ``bytes_copied``
    its staging copies (0 sync, one per persisted byte async).
    ``demo --profile`` renders these per checkpoint.

    With async writes the chunk codec runs as the background pipeline
    drains, so a save's compression bytes can land in the *following*
    profile window; the pipeline-meter totals are always exact.
    """

    iteration: int
    wall_seconds: float
    persist_entries: int
    persist_skipped: int
    bytes_serialized: int
    bytes_hashed: int
    bytes_copied: int
    #: Chunk-codec meters: raw bytes fed to the compressor and encoded
    #: bytes it produced (novel chunks only — dedup hits are never
    #: recompressed, so ``compression_passes`` ≤ 1 strictly).
    bytes_compressed: int = 0
    bytes_compressed_out: int = 0
    #: Precision-codec byte deltas over the save (entry bytes before and
    #: after dtype downcasting); equal when no codec is configured.
    precision_raw_bytes: int = 0
    precision_encoded_bytes: int = 0

    @property
    def hash_passes(self) -> float:
        return self.bytes_hashed / self.bytes_serialized if self.bytes_serialized else 0.0

    @property
    def copy_passes(self) -> float:
        return self.bytes_copied / self.bytes_serialized if self.bytes_serialized else 0.0

    @property
    def compression_passes(self) -> float:
        """Compressor input bytes per serialized byte (≤ 1.0 always)."""
        return self.bytes_compressed / self.bytes_serialized if self.bytes_serialized else 0.0

    @property
    def compression_ratio(self) -> float:
        """encoded/raw over compressed bytes; 1.0 when nothing compressed."""
        return (
            self.bytes_compressed_out / self.bytes_compressed
            if self.bytes_compressed else 1.0
        )

    @property
    def precision_ratio(self) -> float:
        """encoded/raw of the precision codec; 1.0 when none configured."""
        return (
            self.precision_encoded_bytes / self.precision_raw_bytes
            if self.precision_raw_bytes else 1.0
        )

    @property
    def storage_ratio(self) -> float:
        """Combined precision x compression byte shrink for this save."""
        return self.precision_ratio * (
            1.0
            - self.compression_passes
            + self.compression_passes * self.compression_ratio
        )


@dataclass
class RecoveryResult:
    """Outcome of :meth:`MoCCheckpointManager.recover`."""

    plan: RecoveryPlan
    resume_iteration: int
    plt_increment: float
    cumulative_plt: float
    k_after: int
    #: Topology-change bookkeeping; None for same-topology recovery on a
    #: topology-unaware manager.
    reshard: Optional[ReshardPlan] = None
    #: Read-pipeline stats (every recovery drains through the restore
    #: pipeline; ``restore_workers=1`` is a serial read loop).
    restore_stats: Optional[RestoreStats] = None


class MoCCheckpointManager:
    """Two-level PEC checkpointing for a live model + optimizer pair.

    Parameters
    ----------
    model:
        Any model exposing ``named_parameters``/``moe_layers``/
        ``routing_stats`` (``MoETransformerLM`` or ``MoEClassifier``).
    optimizer:
        The :class:`~repro.models.optim.Adam` instance holding master
        weights and moments.
    config:
        Full MoC configuration.
    memory_store / disk_store:
        The snapshot and persist tiers — any
        :class:`~repro.ckpt.backend.CheckpointBackend` pair.
    backend:
        When building the persist tier from ``disk_root``: one of
        ``"memory"``, ``"disk"``, ``"sharded"``
        (see :func:`~repro.ckpt.backend.make_backend`).
    async_writes:
        Route persist-tier saves through an
        :class:`~repro.ckpt.async_writer.AsyncWriteBackend` so
        ``checkpoint`` returns once entries are staged; a deferred write
        error surfaces at the next checkpoint boundary.  Call
        :meth:`flush` for a durability barrier (``recover`` does so
        automatically).  When the persist tier runs the parallel chunk
        engine, its shared-memory staging pool is handed to the async
        pipeline so staged entries are already worker-visible.
    chunk_codec / parallel_workers:
        Dedup-tier features, forwarded to
        :func:`~repro.ckpt.backend.make_backend` when the manager builds
        its own store (``backend="dedup"``): a chunk-compression codec
        name (``"zlib"``/``"zstd"``/``"lz4"``/``"auto"``) or
        :class:`~repro.ckpt.codec.ChunkCodec` instance, and the number
        of hash/compress worker processes (0 = in-process).
    remote_latency / remote_fault_rate / upload_workers / local_keep_stamps:
        Tiered-backend knobs, forwarded to :func:`make_backend` when
        ``backend="tiered"``: simulated remote per-op latency and fault
        rate, background upload worker count (0 = inline uploads), and
        how many distinct stamps stay on the local tier (None = all).
    expert_placement:
        Hosting node(s) per expert for two-level recovery; defaults to a
        two-node striping (or is derived from ``topology`` when given).
    topology:
        The DP+EP rank layout this run trains under.  When set, it is
        persisted with every checkpoint (``meta:topology``) so an
        elastic resume can reshard onto a different layout, and the
        expert placement is derived from it.
    delta_saves:
        Skip persist-tier writes for entries whose content digest is
        unchanged since their last persisted version (the PEC synergy:
        a selected-but-untouched expert costs zero bytes).  The skip
        never re-serializes — digests are computed straight off the
        arrays — and skipped entries are reported on the manifest's
        ``persist_skipped`` records.  The digest cache is dropped on
        any write/flush failure and on recovery, so a skip can never
        trust bytes that were discarded by a failed async pipeline.
    """

    def __init__(
        self,
        model,
        optimizer: Adam,
        config: MoCConfig,
        memory_store: Optional[InMemoryKVStore] = None,
        disk_store: Optional[CheckpointBackend] = None,
        disk_root: Optional[str] = None,
        backend: str = "disk",
        async_writes: bool = False,
        expert_placement: Optional[Mapping[ExpertKey, Sequence[int]]] = None,
        num_nodes: int = 2,
        codec: Optional[PrecisionCodec] = None,
        chunk_codec: Optional[object] = None,
        parallel_workers: int = 0,
        topology: Optional[ShardTopology] = None,
        delta_saves: bool = False,
        remote_latency: float = 0.0,
        remote_fault_rate: float = 0.0,
        upload_workers: int = 1,
        local_keep_stamps: Optional[int] = None,
        hedge_after_seconds: Optional[float] = 0.25,
        observer: Optional[Observer] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.config = config
        self.observer = observer
        if disk_store is None:
            if disk_root is None and backend != "memory":
                raise ValueError("provide disk_store or disk_root")
            disk_store = make_backend(
                backend, disk_root,
                codec=chunk_codec, parallel_workers=parallel_workers,
                remote_latency=remote_latency,
                remote_fault_rate=remote_fault_rate,
                upload_workers=upload_workers,
                local_keep_stamps=local_keep_stamps,
                hedge_after_seconds=hedge_after_seconds,
                registry=observer.registry if observer is not None else None,
            )
        elif chunk_codec is not None or parallel_workers:
            raise ValueError(
                "chunk_codec/parallel_workers configure the store the "
                "manager builds itself; pass a pre-configured DedupBackend "
                "as disk_store instead"
            )
        if async_writes and not isinstance(disk_store, AsyncWriteBackend):
            # Share the parallel engine's shared-memory staging pool with
            # the async pipeline: entries staged for the background writer
            # land directly in a worker-visible arena, so the engine can
            # hash/compress the staged copy without a second copy.
            disk_store = AsyncWriteBackend(
                disk_store,
                staging_pool=getattr(disk_store, "staging_pool", None),
            )
        self.memory_store = memory_store if memory_store is not None else InMemoryKVStore()
        self.disk_store = disk_store
        # Optional precision codec: entries are downcast on save and
        # upcast on load (composes with PEC — orthogonal byte savings).
        self.codec = codec

        self._expert_params: Dict[ExpertKey, List[str]] = expert_param_names(model)
        self._non_expert_params: List[str] = non_expert_param_names(model)
        moe_layers = model.moe_layers()
        self.num_moe_layers = len(moe_layers)
        self.num_experts = moe_layers[0].num_experts if moe_layers else 0
        top_k = moe_layers[0].top_k if moe_layers else 1

        self.planner = PECPlanner(config.pec, self.num_moe_layers, self.num_experts)
        self.plt_tracker = PLTTracker(self.num_moe_layers, self.num_experts, top_k=top_k)
        self.dynamic_k: Optional[DynamicKController] = None
        if config.pec.dynamic_k:
            self.dynamic_k = DynamicKController(
                num_experts=self.num_experts,
                threshold=config.pec.plt_threshold,
                initial_k=config.pec.k_persist,
            )
        self.topology = topology
        if topology is not None and self.num_experts > 0:
            if self.num_experts % topology.d_ep != 0:
                raise ValueError(
                    f"topology d_ep={topology.d_ep} does not divide "
                    f"num_experts={self.num_experts}"
                )
        if expert_placement is None:
            if topology is not None:
                expert_placement = placement_from_topology(
                    topology, self.num_moe_layers, self.num_experts
                )
            else:
                expert_placement = default_expert_placement(
                    self.num_moe_layers, self.num_experts, num_nodes=num_nodes
                )
        self.expert_placement = dict(expert_placement)
        self.num_nodes = max(
            (max(nodes) for nodes in self.expert_placement.values()), default=0
        ) + 1

        self.checkpoint_count = 0
        self.manifests: List[CheckpointManifest] = []
        self.delta_saves = delta_saves
        # key -> (content digest, nbytes, stamp) of the last *written*
        # persist-tier version; the delta-save skip compares against it.
        self._persist_digests: Dict[str, tuple] = {}
        # Persist-pipeline byte meters (serialized / hashed / copied) and
        # the per-save breakdown ``demo --profile`` renders.  Digests are
        # computed at the persist tier's chunk granularity so the dedup
        # backend reuses the same sweep — the single-hash-pass property
        # the meters let tests *pin* rather than assume.
        self.pipeline_meters = PipelineMeters(
            registry=observer.registry if observer is not None else None
        )
        self.save_profile: List[SaveProfile] = []
        # Phase-latency histograms live on the same registry as the
        # meters so a ``--metrics-dump`` shows latency next to bytes.
        self._h_save_seconds = self.pipeline_meters.registry.histogram(
            "moc_save_seconds", "Wall seconds per two-level checkpoint save."
        )
        self._h_recover_seconds = self.pipeline_meters.registry.histogram(
            "moc_recover_seconds", "Wall seconds per recovery (restore included)."
        )
        self._digest_chunk_bytes = self.disk_store.digest_chunk_bytes
        # A tiered persist store reports its upload pipeline (bytes
        # uploaded, backed-off retries) through the same meters, so
        # ``demo --profile`` shows the remote tier next to the
        # serialize/hash/copy counters.
        tier_target = getattr(self.disk_store, "inner", self.disk_store)
        if isinstance(tier_target, TieredBackend):
            tier_target.meters = self.pipeline_meters

    # ------------------------------------------------------------------
    # Entry extraction / injection
    # ------------------------------------------------------------------
    def _weights_entry(self, param_name: str) -> Dict[str, np.ndarray]:
        return {"weights": self.optimizer.params[param_name].data.copy()}

    def _optimizer_entry(self, param_name: str) -> Dict[str, np.ndarray]:
        state = self.optimizer.state[param_name]
        return {
            "master": state.master.copy(),
            "m": state.m.copy(),
            "v": state.v.copy(),
            "step": np.asarray(state.step),
        }

    def _full_entry(self, param_name: str) -> Dict[str, np.ndarray]:
        entry = self._optimizer_entry(param_name)
        entry["weights"] = self.optimizer.params[param_name].data.copy()
        return entry

    def _encode(self, entry: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return self.codec.encode(entry) if self.codec is not None else entry

    def _decode(self, entry: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return self.codec.decode(entry) if self.codec is not None else entry

    def _load_entry(self, param_name: str, entry: Mapping[str, np.ndarray]) -> None:
        param = self.optimizer.params[param_name]
        state = self.optimizer.state[param_name]
        if "weights" in entry:
            param.data = np.array(entry["weights"], dtype=np.float64)
        if "master" in entry:
            state.master = np.array(entry["master"], dtype=np.float64)
            state.m = np.array(entry["m"], dtype=np.float64)
            state.v = np.array(entry["v"], dtype=np.float64)
            state.step = int(np.asarray(entry["step"]).reshape(-1)[0])
            if "weights" not in entry:
                # Optimizer-only restore: the master copy governs the
                # parameter value going forward (mixed-precision rule).
                param.data = state.master.copy()

    # ------------------------------------------------------------------
    # Routing / PLT feed
    # ------------------------------------------------------------------
    def note_routing(self, tokens_per_expert: Sequence[np.ndarray]) -> None:
        """Record one training step's per-layer expert token counts."""
        self.plt_tracker.record_batch(tokens_per_expert)

    def note_model_routing(self) -> None:
        """Convenience: pull routing stats straight off the model."""
        stats = self.model.routing_stats()
        self.note_routing([s.tokens_per_expert for s in stats])

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def maybe_checkpoint(self, iteration: int) -> Optional[CheckpointManifest]:
        interval = self.config.two_level.checkpoint_interval
        if interval <= 0 or iteration == 0 or iteration % interval != 0:
            return None
        return self.checkpoint(iteration)

    def _expert_nodes(self, key: ExpertKey) -> tuple:
        return tuple(self.expert_placement.get(key, [0]))

    def save_initial(self, iteration: int = 0) -> CheckpointManifest:
        """Write a full (every expert, every component) baseline checkpoint.

        Run once before training so that every entry exists in both tiers
        — recovery from the very first fault would otherwise find experts
        that were never saved.  Does not advance the PEC rotation.
        """
        with _span("save-initial", iteration=iteration):
            return self._save_initial(iteration)

    def _save_initial(self, iteration: int) -> CheckpointManifest:
        begin = time.perf_counter()
        meters_before = self.pipeline_meters.snapshot()
        codec_before = self._codec_stats()
        manifest = CheckpointManifest(checkpoint_index=-1, iteration=iteration)
        all_experts = {
            ExpertKey(layer, expert)
            for layer in range(self.num_moe_layers)
            for expert in range(self.num_experts)
        }
        snapshot_items: List = []
        persist_items: List = []
        for name in self._non_expert_params:
            key = non_expert_entry_key(name)
            entry = self._encode(self._full_entry(name))
            snapshot_items.append((key, entry, iteration, 0))
            persist_items.append((key, entry, iteration, 0))
        for expert_key in sorted(all_experts):
            node = self._expert_nodes(expert_key)
            for name in self._expert_params[expert_key]:
                w_key = expert_entry_key(expert_key, name) + ":w"
                o_key = expert_entry_key(expert_key, name) + ":o"
                w_entry = self._encode(self._weights_entry(name))
                o_entry = self._encode(self._optimizer_entry(name))
                for key, entry in ((w_key, w_entry), (o_key, o_entry)):
                    snapshot_items.append((key, entry, iteration, node))
                    persist_items.append((key, entry, iteration, 0))
        with _span("snapshot-save", entries=len(snapshot_items)):
            sizes = self.memory_store.put_many(snapshot_items)
        self._record(manifest.snapshot_entries, snapshot_items, sizes)
        self._persist_batch(manifest, persist_items)
        self._persist_topology(iteration)
        meta_key = meta_entry_key("iteration")
        self.memory_store.put(meta_key, {"iteration": np.asarray(iteration)}, stamp=iteration)
        self._persist_put(meta_key, {"iteration": np.asarray(iteration)}, iteration)
        self.plt_tracker.record_save(SNAPSHOT_TIER, all_experts)
        self.plt_tracker.record_save(PERSIST_TIER, all_experts)
        self.manifests.append(manifest)
        self._record_profile(manifest, begin, meters_before, codec_before)
        return manifest

    def checkpoint(self, iteration: int) -> CheckpointManifest:
        """Run one two-level checkpoint at ``iteration``."""
        with _span("save", iteration=iteration):
            return self._checkpoint(iteration)

    def _checkpoint(self, iteration: int) -> CheckpointManifest:
        begin = time.perf_counter()
        meters_before = self.pipeline_meters.snapshot()
        codec_before = self._codec_stats()
        unsaved = None
        if self.config.pec.selection is SelectionStrategy.LOAD_AWARE:
            unsaved = self.plt_tracker.unsaved_tokens(PERSIST_TIER)
        if self.dynamic_k is not None:
            self.planner.set_k(k_persist=self.dynamic_k.k, k_snapshot=max(
                self.planner.k_snapshot, self.dynamic_k.k
            ))
        plan = self.planner.plan(self.checkpoint_count, unsaved_tokens=unsaved)
        manifest = CheckpointManifest(
            checkpoint_index=self.checkpoint_count, iteration=iteration
        )

        # --- snapshot tier (GPU -> CPU memory) -------------------------
        snapshot_items: List = []
        for name in self._non_expert_params:
            key = non_expert_entry_key(name)
            snapshot_items.append((key, self._encode(self._full_entry(name)), iteration, 0))
        snapshot_weight_experts = self._component_experts(plan, "weights", tier="snapshot")
        snapshot_moment_experts = self._component_experts(plan, "moments", tier="snapshot")
        for expert_key in sorted(snapshot_weight_experts | snapshot_moment_experts):
            node = self._expert_nodes(expert_key)
            for name in self._expert_params[expert_key]:
                if expert_key in snapshot_weight_experts:
                    key = expert_entry_key(expert_key, name) + ":w"
                    snapshot_items.append(
                        (key, self._encode(self._weights_entry(name)), iteration, node)
                    )
                if expert_key in snapshot_moment_experts:
                    key = expert_entry_key(expert_key, name) + ":o"
                    snapshot_items.append(
                        (key, self._encode(self._optimizer_entry(name)), iteration, node)
                    )
        with _span("snapshot-save", entries=len(snapshot_items)):
            sizes = self.memory_store.put_many(snapshot_items)
        self._record(manifest.snapshot_entries, snapshot_items, sizes)
        meta_key = meta_entry_key("iteration")
        self.memory_store.put(meta_key, {"iteration": np.asarray(iteration)}, stamp=iteration)
        self.plt_tracker.record_save(
            SNAPSHOT_TIER, snapshot_weight_experts & snapshot_moment_experts
        )

        # --- persist tier (CPU memory -> storage) ----------------------
        # Batched; with async_writes the batch is staged on the write
        # pipeline and drains while training computes.  The meta entry
        # goes last so a durable meta stamp implies its checkpoint's
        # entries were accepted before it.
        persist_items: List = []
        for name in self._non_expert_params:
            key = non_expert_entry_key(name)
            persist_items.append((key, self._encode(self._full_entry(name)), iteration, 0))
        persist_weight_experts = self._component_experts(plan, "weights", tier="persist")
        persist_moment_experts = self._component_experts(plan, "moments", tier="persist")
        for expert_key in sorted(persist_weight_experts | persist_moment_experts):
            for name in self._expert_params[expert_key]:
                if expert_key in persist_weight_experts:
                    key = expert_entry_key(expert_key, name) + ":w"
                    persist_items.append(
                        (key, self._encode(self._weights_entry(name)), iteration, 0)
                    )
                if expert_key in persist_moment_experts:
                    key = expert_entry_key(expert_key, name) + ":o"
                    persist_items.append(
                        (key, self._encode(self._optimizer_entry(name)), iteration, 0)
                    )
        self._persist_batch(manifest, persist_items)
        # Topology before the iteration meta: the iteration entry is the
        # commit record, so a durable stamp implies the topology (and
        # every state entry) of its checkpoint was accepted first.
        self._persist_topology(iteration)
        self._persist_put(meta_key, {"iteration": np.asarray(iteration)}, iteration)
        self.plt_tracker.record_save(
            PERSIST_TIER, persist_weight_experts & persist_moment_experts
        )

        self.checkpoint_count += 1
        self.manifests.append(manifest)
        self._record_profile(manifest, begin, meters_before, codec_before)
        return manifest

    def _codec_stats(self) -> tuple:
        """Precision-codec (raw, encoded) byte counters, 0s when none."""
        if self.codec is None or not hasattr(self.codec, "stats"):
            return (0, 0)
        return (self.codec.stats.raw_bytes, self.codec.stats.encoded_bytes)

    def _record_profile(
        self, manifest: CheckpointManifest, begin: float, meters_before: Dict[str, int],
        codec_before: tuple = (0, 0),
    ) -> None:
        """Append one :class:`SaveProfile` covering the save just run."""
        after = self.pipeline_meters.snapshot()
        codec_after = self._codec_stats()
        wall = time.perf_counter() - begin
        self._h_save_seconds.observe(wall)
        self.save_profile.append(SaveProfile(
            iteration=manifest.iteration,
            wall_seconds=wall,
            persist_entries=len(manifest.persist_entries),
            persist_skipped=len(manifest.persist_skipped),
            bytes_serialized=after["bytes_serialized"] - meters_before["bytes_serialized"],
            bytes_hashed=after["bytes_hashed"] - meters_before["bytes_hashed"],
            bytes_copied=after["bytes_copied"] - meters_before["bytes_copied"],
            bytes_compressed=(
                after["bytes_compressed"] - meters_before["bytes_compressed"]
            ),
            bytes_compressed_out=(
                after["bytes_compressed_out"] - meters_before["bytes_compressed_out"]
            ),
            precision_raw_bytes=codec_after[0] - codec_before[0],
            precision_encoded_bytes=codec_after[1] - codec_before[1],
        ))

    @staticmethod
    def _record(records: List[ManifestRecord], items, sizes: Sequence[int]) -> None:
        for (key, _entry, stamp, _node), nbytes in zip(items, sizes):
            records.append(ManifestRecord(key, stamp, nbytes))

    def _frames(self, entry: Mapping[str, np.ndarray]) -> PayloadFrames:
        """Serialize an entry for the persist tier: zero-copy frames
        carrying the manager's pipeline meters."""
        return PayloadFrames.from_entry(entry, meters=self.pipeline_meters)

    def _persist_batch(self, manifest: CheckpointManifest, items: List) -> None:
        """Write a persist-tier batch, delta-skipping unchanged content.

        Entries are serialized once into zero-copy frame ropes.  With
        ``delta_saves`` on, each rope's content digest is derived from
        its chunk digests (at the persist tier's chunk granularity) —
        one SHA-256 sweep that the dedup backend then *reuses* for
        chunk addressing, instead of a second hashing pass.  Entries
        whose digest matches their last written version are dropped
        from the batch and recorded on ``manifest.persist_skipped``
        (with the stored version's stamp and size — what the skip
        relies on).  Any write failure drops the whole digest cache: a
        deferred async error discards queued writes, so nothing
        accepted after the failure may be skipped on the strength of a
        stale digest.
        """
        digests: List[str] = []
        payload_items: List = []
        with _span("persist-serialize", items=len(items)):
            for key, entry, stamp, node in items:
                frames = self._frames(entry)
                if self.delta_saves:
                    digest = frames.entry_digest(self._digest_chunk_bytes)
                    prev = self._persist_digests.get(key)
                    if prev is not None and prev[0] == digest:
                        manifest.persist_skipped.append(
                            ManifestRecord(key, prev[2], prev[1])
                        )
                        continue
                    digests.append(digest)
                payload_items.append((key, frames, stamp, node))
        try:
            with _span("persist-save", entries=len(payload_items)):
                sizes = self.disk_store.put_many_serialized(payload_items)
        except BaseException:
            self._persist_digests.clear()
            raise
        self._record(manifest.persist_entries, payload_items, sizes)
        if self.delta_saves:
            for (key, _frames, stamp, _node), digest, nbytes in zip(
                payload_items, digests, sizes
            ):
                self._persist_digests[key] = (digest, nbytes, stamp)

    def _persist_put_frames(self, key: str, frames: PayloadFrames, stamp: int) -> int:
        """Single persist-tier put holding THE digest-cache failure rule:
        any write failure drops the whole cache.  Deferred async errors
        surface at the *next* write — often the meta/topology put of the
        same checkpoint — and must drop the cache there too, or the next
        checkpoint would skip entries whose bytes were discarded."""
        try:
            return self.disk_store.put_serialized(key, frames, stamp=stamp)
        except BaseException:
            self._persist_digests.clear()
            raise

    def _persist_put(self, key: str, entry: Mapping[str, np.ndarray], stamp: int) -> int:
        return self._persist_put_frames(key, self._frames(entry), stamp)

    def _persist_topology(self, iteration: int) -> None:
        """Record the save-time topology inside the checkpoint."""
        if self.topology is None:
            return
        key = meta_entry_key(TOPOLOGY_META_NAME)
        entry = topology_meta_entry(self.topology)
        if self.delta_saves:
            frames = self._frames(entry)
            digest = frames.entry_digest(self._digest_chunk_bytes)
            prev = self._persist_digests.get(key)
            if prev is not None and prev[0] == digest:
                return
            nbytes = self._persist_put_frames(key, frames, iteration)
            self._persist_digests[key] = (digest, nbytes, iteration)
            return
        self._persist_put(key, entry, iteration)

    def flush(self) -> None:
        """Durability barrier over both tiers (async persist included)."""
        try:
            with _span("manager-flush"):
                self.memory_store.flush()
                self.disk_store.flush()
        except BaseException:
            self._persist_digests.clear()
            raise

    def close(self) -> None:
        """Flush and release store resources (async worker threads)."""
        self.memory_store.close()
        self.disk_store.close()

    def __enter__(self) -> "MoCCheckpointManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Flush *then* close, so a deferred async write error surfaces
        here (``AsyncWriteBackend.close`` stops the worker before it
        raises; an explicit flush turns a silent drop into the error
        the training loop must see).  Close runs even when the flush —
        or the ``with`` body — raised, so worker threads never leak.
        """
        try:
            self.flush()
        finally:
            self.close()

    def _component_experts(self, plan: PECPlan, component: str, tier: str) -> Set[ExpertKey]:
        """Experts whose ``component`` is written at ``tier`` this checkpoint."""
        restricted = plan.apply_to_weights if component == "weights" else plan.apply_to_moments
        if not restricted:
            return set(
                ExpertKey(layer, expert)
                for layer in range(self.num_moe_layers)
                for expert in range(self.num_experts)
            )
        return set(plan.snapshot_experts if tier == "snapshot" else plan.persist_experts)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _entry_keys_by_expert(self) -> Dict[ExpertKey, List[str]]:
        grouped: Dict[ExpertKey, List[str]] = {}
        for expert_key, names in self._expert_params.items():
            keys: List[str] = []
            for name in names:
                keys.append(expert_entry_key(expert_key, name) + ":w")
                keys.append(expert_entry_key(expert_key, name) + ":o")
            grouped[expert_key] = keys
        return grouped

    def recover(
        self,
        failed_nodes: Sequence[int] = (0,),
        target_topology: Optional[ShardTopology] = None,
        restore_workers: int = 1,
    ) -> RecoveryResult:
        """Restore model + optimizer state after a node fault.

        ``failed_nodes`` lose their in-memory snapshots; everything else
        may be restored from memory when two-level recovery is enabled.
        Training must resume from the last *persisted* checkpoint's
        iteration.

        ``target_topology`` reshards the restore onto a different DP+EP
        layout: entry reads are re-assigned to target ranks, experts
        whose snapshot nodes no longer exist fall back to the persist
        tier, and the manager adopts the target placement afterwards.
        ``restore_workers`` sizes the parallel read pipeline (1 = serial).
        """
        begin = time.perf_counter()
        with _span("recover", restore_workers=restore_workers):
            result = self._recover(failed_nodes, target_topology, restore_workers)
        self._h_recover_seconds.observe(time.perf_counter() - begin)
        return result

    def _recover(
        self,
        failed_nodes: Sequence[int],
        target_topology: Optional[ShardTopology],
        restore_workers: int,
    ) -> RecoveryResult:
        # Drain any in-flight async writes before reading: recovery must
        # observe every accepted put (and surface deferred write errors).
        # The delta-save digest cache is dropped either way — post-fault,
        # only the store's contents are truth.
        self._persist_digests.clear()
        self.disk_store.flush()
        if not self.disk_store.has(meta_entry_key("iteration")):
            raise RuntimeError("no persisted checkpoint to recover from")
        for node in failed_nodes:
            self.memory_store.drop_node(node)
        resume_iteration = int(
            np.asarray(self.disk_store.get(meta_entry_key("iteration"))["iteration"]).reshape(-1)[0]
        )
        reshard: Optional[ReshardPlan] = None
        target = target_topology if target_topology is not None else self.topology
        if target is not None:
            reshard = plan_reshard(
                self.memory_store,
                self.disk_store,
                self._entry_keys_by_expert(),
                [non_expert_entry_key(name) for name in self._non_expert_params],
                self.expert_placement,
                self.num_experts,
                target=target,
                source=load_saved_topology(self.disk_store) or self.topology,
                failed_nodes=failed_nodes,
                resume_iteration=resume_iteration,
                two_level=self.config.two_level.two_level_recovery,
            )
            plan = reshard.recovery
            requests = reshard_read_requests(reshard, self.memory_store, self.disk_store)
        else:
            plan = build_recovery_plan(
                self.memory_store,
                self.disk_store,
                self._entry_keys_by_expert(),
                [non_expert_entry_key(name) for name in self._non_expert_params],
                self.expert_placement,
                failed_nodes,
                resume_iteration,
                two_level=self.config.two_level.two_level_recovery,
            )
            requests = [
                ReadRequest(
                    key=entry_key,
                    store=(
                        self.memory_store
                        if plan.sources[entry_key] == SNAPSHOT_TIER
                        else self.disk_store
                    ),
                )
                for entry_key in plan.sources
            ]
        # Zero-copy reads: entries come back as frombuffer views (no
        # per-field allocation); _load_entry copies into the optimizer's
        # own arrays, which is the writability guard — training never
        # sees a read-only restored array.
        with _span("restore-fetch", requests=len(requests)):
            entries, restore_stats = ParallelRestorer(
                workers=restore_workers, copy=False
            ).fetch(requests)
        with _span("restore-apply", entries=len(entries)):
            self._apply_entries(entries)
        if target_topology is not None:
            self._adopt_topology(target_topology)

        fault_loss = self.plt_tracker.record_fault(
            recovery_tier_per_expert=plan.tier_per_expert, default_tier=PERSIST_TIER
        )
        k_after = self.planner.k_persist
        if self.dynamic_k is not None:
            k_after = self.dynamic_k.record_fault(fault_loss.plt_increment)
            self.planner.set_k(
                k_persist=k_after, k_snapshot=max(self.planner.k_snapshot, k_after)
            )
        return RecoveryResult(
            plan=plan,
            resume_iteration=resume_iteration,
            plt_increment=fault_loss.plt_increment,
            cumulative_plt=self.plt_tracker.plt(),
            k_after=k_after,
            reshard=reshard,
            restore_stats=restore_stats,
        )

    def _apply_entries(self, entries: Mapping[str, Dict[str, np.ndarray]]) -> None:
        """Load fetched checkpoint entries into the model + optimizer."""
        for name in self._non_expert_params:
            self._load_entry(name, self._decode(entries[non_expert_entry_key(name)]))
        for expert_key, names in self._expert_params.items():
            for name in names:
                entry: Dict[str, np.ndarray] = {}
                entry.update(entries[expert_entry_key(expert_key, name) + ":w"])
                entry.update(entries[expert_entry_key(expert_key, name) + ":o"])
                self._load_entry(name, self._decode(entry))

    def _adopt_topology(self, topology: ShardTopology) -> None:
        """Switch the manager onto a new rank layout after a reshard.

        Future checkpoints persist the new topology; snapshots on nodes
        that no longer exist are dropped from the memory tier.
        """
        old_nodes = self.num_nodes
        self.topology = topology
        self.expert_placement = placement_from_topology(
            topology, self.num_moe_layers, self.num_experts
        )
        for node in range(topology.num_nodes, old_nodes):
            self.memory_store.drop_node(node)
        self.num_nodes = topology.num_nodes

    def restore(
        self,
        topology: Optional[ShardTopology] = None,
        workers: int = 4,
        failed_nodes: Optional[Sequence[int]] = None,
    ) -> RecoveryResult:
        """Elastic restore: rebuild full state, optionally resharded.

        The cold-restart entry point: by default every save-time node is
        treated as failed (no CPU memory survives a job restart), so all
        state comes back from the persist tier through the parallel read
        pipeline.  Pass ``failed_nodes`` explicitly for a warm resize
        where surviving nodes keep their snapshots.
        """
        if failed_nodes is None:
            failed_nodes = sorted(
                {node for nodes in self.expert_placement.values() for node in nodes}
            )
        return self.recover(
            failed_nodes=failed_nodes,
            target_topology=topology if topology is not None else self.topology,
            restore_workers=workers,
        )
