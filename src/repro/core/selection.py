"""Partial-expert selection strategies (Section 3.2) and Dynamic-K.

A *selector* answers: at checkpoint number ``c``, which ``k`` experts of
each MoE layer should be saved?  The sequential selector interleaves the
choice across layers and checkpoints so the workload rotates over EP ranks
(Figure 4); the load-aware selector prioritises experts with the most
unsaved token updates; the full selector saves everything.

``DynamicKController`` implements Section 5.3's fault-accumulation rule:
it doubles ``K_pec`` whenever the PLT attributed to the current ``K``
exhausts that ``K``'s share of the 3.75% budget, up to full checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..models.serial import ExpertKey
from .config import DEFAULT_PLT_THRESHOLD, SelectionStrategy


class ExpertSelector:
    """Interface for partial expert selection."""

    def __init__(self, num_moe_layers: int, num_experts: int) -> None:
        if num_moe_layers < 1 or num_experts < 1:
            raise ValueError("need at least one MoE layer and one expert")
        self.num_moe_layers = num_moe_layers
        self.num_experts = num_experts

    def select(
        self,
        checkpoint_index: int,
        k: int,
        unsaved_tokens: Optional[np.ndarray] = None,
    ) -> Set[ExpertKey]:
        """Return the experts to save at this checkpoint.

        ``unsaved_tokens`` is an optional (num_moe_layers, num_experts)
        array of token updates accumulated since each expert was last
        saved; only the load-aware strategy consumes it.
        """
        raise NotImplementedError

    def _validate_k(self, k: int) -> int:
        if not 1 <= k <= self.num_experts:
            raise ValueError(f"k={k} out of range [1, {self.num_experts}]")
        return k


class SequentialSelector(ExpertSelector):
    """Round-robin selection interleaved across MoE layers (Figure 4).

    At checkpoint ``c`` with ``k`` experts per layer, MoE layer ``m``
    saves experts ``{(m + c*k + j) mod N : j < k}``.  The per-layer offset
    ``m`` staggers the selection across layers so the checkpoint workload
    spreads over EP ranks; advancing by ``k`` each checkpoint guarantees
    every expert is saved at least once every ``ceil(N/k)`` checkpoints.
    """

    def select(
        self,
        checkpoint_index: int,
        k: int,
        unsaved_tokens: Optional[np.ndarray] = None,
    ) -> Set[ExpertKey]:
        k = self._validate_k(k)
        selected: Set[ExpertKey] = set()
        for layer in range(self.num_moe_layers):
            base = layer + checkpoint_index * k
            for j in range(k):
                selected.add(ExpertKey(layer, (base + j) % self.num_experts))
        return selected


class LoadAwareSelector(ExpertSelector):
    """Select the ``k`` experts with the most unsaved token updates.

    Ties are broken by expert index for determinism.  Falls back to the
    sequential pattern when no load information is available (e.g. the
    very first checkpoint).
    """

    def __init__(self, num_moe_layers: int, num_experts: int) -> None:
        super().__init__(num_moe_layers, num_experts)
        self._fallback = SequentialSelector(num_moe_layers, num_experts)

    def select(
        self,
        checkpoint_index: int,
        k: int,
        unsaved_tokens: Optional[np.ndarray] = None,
    ) -> Set[ExpertKey]:
        k = self._validate_k(k)
        if unsaved_tokens is None:
            return self._fallback.select(checkpoint_index, k)
        loads = np.asarray(unsaved_tokens)
        if loads.shape != (self.num_moe_layers, self.num_experts):
            raise ValueError(
                f"unsaved_tokens shape {loads.shape} != "
                f"({self.num_moe_layers}, {self.num_experts})"
            )
        selected: Set[ExpertKey] = set()
        for layer in range(self.num_moe_layers):
            # argsort on (-load, index) for deterministic tie-breaks.
            order = np.lexsort((np.arange(self.num_experts), -loads[layer]))
            for expert in order[:k]:
                selected.add(ExpertKey(layer, int(expert)))
        return selected


class FullSelector(ExpertSelector):
    """Save every expert — conventional checkpointing."""

    def select(
        self,
        checkpoint_index: int,
        k: int,
        unsaved_tokens: Optional[np.ndarray] = None,
    ) -> Set[ExpertKey]:
        return {
            ExpertKey(layer, expert)
            for layer in range(self.num_moe_layers)
            for expert in range(self.num_experts)
        }


def make_selector(
    strategy: SelectionStrategy, num_moe_layers: int, num_experts: int
) -> ExpertSelector:
    if strategy is SelectionStrategy.SEQUENTIAL:
        return SequentialSelector(num_moe_layers, num_experts)
    if strategy is SelectionStrategy.LOAD_AWARE:
        return LoadAwareSelector(num_moe_layers, num_experts)
    if strategy is SelectionStrategy.FULL:
        return FullSelector(num_moe_layers, num_experts)
    raise ValueError(f"unknown selection strategy {strategy!r}")


@dataclass
class DynamicKController:
    """Dynamic-K for fault accumulation (Section 5.3, Figure 15(b)).

    The PLT budget (default 3.75%) is divided equally among the ladder of
    ``K`` values ``1, 2, 4, ..., N``.  Each fault's PLT contribution is
    attributed to the ``K`` in force when it struck; when a ``K`` exhausts
    its share, ``K`` doubles.  Once ``K == N`` checkpointing is full and
    no further PLT accrues.
    """

    num_experts: int
    threshold: float = DEFAULT_PLT_THRESHOLD
    initial_k: int = 1

    def __post_init__(self) -> None:
        if self.initial_k < 1 or self.initial_k > self.num_experts:
            raise ValueError("initial_k out of range")
        self.k = self.initial_k
        ladder: List[int] = []
        k = self.initial_k
        while k < self.num_experts:
            ladder.append(k)
            k *= 2
        ladder.append(self.num_experts)
        self._ladder = ladder
        self._budget_per_stage = self.threshold / len(ladder)
        self._attributed: Dict[int, float] = {k: 0.0 for k in ladder}
        self.cumulative_plt = 0.0
        self.history: List[int] = []

    def record_fault(self, plt_increment: float) -> int:
        """Record a fault's PLT contribution; return the new ``K``.

        ``plt_increment`` is the PLT added by this fault under the current
        ``K`` (computed by the PLT tracker).
        """
        if plt_increment < 0:
            raise ValueError("plt_increment must be non-negative")
        self.cumulative_plt += plt_increment
        self._attributed[self.k] = self._attributed.get(self.k, 0.0) + plt_increment
        while (
            self.k < self.num_experts
            and self._attributed.get(self.k, 0.0) >= self._budget_per_stage
        ):
            next_k = min(self.k * 2, self.num_experts)
            self.k = next_k
        self.history.append(self.k)
        return self.k
