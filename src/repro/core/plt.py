"""The Proportion of Lost Tokens (PLT) metric — Eq. 7 of the paper.

PEC recovery restores most experts to *stale* states: every token an
expert processed after its restored stamp is a lost update.  The tracker
keeps, per ``(moe_layer, expert)``:

* the cumulative number of tokens the expert has processed,
* the cumulative count at the expert's most recent *snapshot* save and
  most recent *persist* save (the two tiers of Section 5).

On a fault, the caller says which tier each expert recovers from; the
tracker charges the difference between the current count and the
recovered stamp as lost tokens, rolls the counts back (training resumes
from the restored state), and accumulates Eq. 7's numerator.  The
denominator is the total number of expert-token assignments processed
over the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..models.serial import ExpertKey

SNAPSHOT_TIER = "snapshot"
PERSIST_TIER = "persist"
_TIERS = (SNAPSHOT_TIER, PERSIST_TIER)


@dataclass
class FaultLoss:
    """Per-fault accounting result."""

    lost_tokens_per_layer: np.ndarray
    plt_increment: float


class PLTTracker:
    """Tracks routed tokens and computes PLT (Eq. 7)."""

    def __init__(self, num_moe_layers: int, num_experts: int, top_k: int = 1) -> None:
        if num_moe_layers < 1 or num_experts < 1:
            raise ValueError("invalid MoE topology")
        self.num_moe_layers = num_moe_layers
        self.num_experts = num_experts
        self.top_k = top_k
        shape = (num_moe_layers, num_experts)
        self._current = np.zeros(shape, dtype=np.int64)
        self._stamps: Dict[str, np.ndarray] = {
            tier: np.zeros(shape, dtype=np.int64) for tier in _TIERS
        }
        # Counts at the most recent *persist* checkpoint: the globally
        # consistent point training resumes from after a fault.  Tokens
        # processed after it are replayed on recovery, so they are never
        # "lost"; tokens between an expert's stale stamp and this point are.
        self._resume_counts = np.zeros(shape, dtype=np.int64)
        self._lost = np.zeros(num_moe_layers, dtype=np.int64)
        # Total expert-token assignments per layer (T_i * TopK_i, counted
        # as actually-processed assignments).
        self._total_assignments = np.zeros(num_moe_layers, dtype=np.int64)
        self.num_faults = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_batch(self, tokens_per_expert: Sequence[np.ndarray]) -> None:
        """Record one training step's routing counts (one array per layer)."""
        if len(tokens_per_expert) != self.num_moe_layers:
            raise ValueError(
                f"expected counts for {self.num_moe_layers} layers, got {len(tokens_per_expert)}"
            )
        for layer, counts in enumerate(tokens_per_expert):
            counts = np.asarray(counts)
            if counts.shape != (self.num_experts,):
                raise ValueError(f"layer {layer}: bad counts shape {counts.shape}")
            self._current[layer] += counts
            self._total_assignments[layer] += int(counts.sum())

    def record_save(self, tier: str, experts: Iterable[ExpertKey]) -> None:
        """Stamp the given experts as saved at the current counts.

        A persist save implies the data passed through the snapshot tier,
        so persist stamps also refresh snapshot stamps.
        """
        if tier not in _TIERS:
            raise ValueError(f"unknown tier {tier!r}")
        if tier == PERSIST_TIER:
            # Every persist checkpoint (regardless of which experts it
            # includes) establishes the new resume point.
            self._resume_counts = self._current.copy()
        for key in experts:
            self._stamps[tier][key.moe_layer, key.expert] = self._current[
                key.moe_layer, key.expert
            ]
            if tier == PERSIST_TIER:
                self._stamps[SNAPSHOT_TIER][key.moe_layer, key.expert] = max(
                    self._stamps[SNAPSHOT_TIER][key.moe_layer, key.expert],
                    self._current[key.moe_layer, key.expert],
                )

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def record_fault(
        self,
        recovery_tier_per_expert: Optional[Mapping[ExpertKey, str]] = None,
        default_tier: str = PERSIST_TIER,
    ) -> FaultLoss:
        """Charge the update loss for a fault and roll counts back.

        ``recovery_tier_per_expert`` maps experts to the tier they are
        recovered from (two-level recovery restores surviving nodes'
        experts from ``"snapshot"``); unmapped experts use
        ``default_tier``.

        Training resumes from the last persist checkpoint, replaying
        everything after it — so an expert's permanent update loss is the
        tokens between its recovered stamp and that *resume point*.  An
        expert restored from a newer in-memory snapshot (ahead of the
        resume point, Figure 8) loses nothing.
        """
        if default_tier not in _TIERS:
            raise ValueError(f"unknown tier {default_tier!r}")
        recovery_tier_per_expert = recovery_tier_per_expert or {}
        lost_per_layer = np.zeros(self.num_moe_layers, dtype=np.int64)
        for layer in range(self.num_moe_layers):
            for expert in range(self.num_experts):
                tier = recovery_tier_per_expert.get(ExpertKey(layer, expert), default_tier)
                stamp = self._stamps[tier][layer, expert]
                if stamp > self._current[layer, expert]:
                    raise RuntimeError("stamp ahead of current count — corrupt tracker")
                resume = self._resume_counts[layer, expert]
                lost_per_layer[layer] += max(0, resume - stamp)
                # Roll back to the resume point: the replayed tokens will
                # be re-recorded by the trainer.
                self._current[layer, expert] = resume
                for t in _TIERS:
                    self._stamps[t][layer, expert] = min(
                        self._stamps[t][layer, expert], resume
                    )
        self._lost += lost_per_layer
        self.num_faults += 1
        return FaultLoss(
            lost_tokens_per_layer=lost_per_layer,
            plt_increment=self._plt_of(lost_per_layer),
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _plt_of(self, lost_per_layer: np.ndarray) -> float:
        ratios = []
        for layer in range(self.num_moe_layers):
            total = self._total_assignments[layer]
            if total == 0:
                ratios.append(0.0)
            else:
                ratios.append(lost_per_layer[layer] / total)
        return float(np.mean(ratios))

    def plt(self) -> float:
        """Eq. 7: mean over layers of (total lost / total assignments)."""
        return self._plt_of(self._lost)

    def unsaved_tokens(self, tier: str = PERSIST_TIER) -> np.ndarray:
        """Tokens routed per expert since its last save at ``tier``.

        This is the load signal consumed by the load-aware selector.
        """
        if tier not in _TIERS:
            raise ValueError(f"unknown tier {tier!r}")
        return self._current - self._stamps[tier]

    @property
    def total_assignments(self) -> np.ndarray:
        return self._total_assignments.copy()

    @property
    def lost_tokens(self) -> np.ndarray:
        return self._lost.copy()


def analytic_plt(
    num_experts: int,
    k_pec: int,
    i_ckpt: int,
    num_faults: int,
    total_iterations: int,
    balanced: bool = True,
) -> float:
    """Closed-form PLT estimate for balanced routing.

    At any checkpoint, sequential selection leaves expert states that are
    ``0, 1, ..., ceil(N/k) - 1`` checkpoint intervals stale (uniformly),
    so a fault permanently loses a mean of ``(ceil(N/k) - 1) / 2``
    intervals of updates per expert; everything after the resume point is
    replayed.  With the paper's Figure 5 setup (GPT-125M-8E on Wikitext-2,
    one mid-training fault, ~1280 iterations) this closed form lands
    within measurement noise of the reported grid — e.g. K=1, I=32 gives
    3.5 * 32 / 1280 = 8.75% vs the paper's 8.62%.
    """
    if not balanced:
        raise NotImplementedError("only the balanced closed form is provided")
    cycle = int(np.ceil(num_experts / k_pec))
    mean_staleness_intervals = (cycle - 1) / 2.0
    lost_iterations = num_faults * mean_staleness_intervals * i_ckpt
    return float(lost_iterations / total_iterations)
