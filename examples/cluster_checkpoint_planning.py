"""Plan checkpointing for a cluster deployment (Section 5.3 in practice).

Given a model spec and a parallel layout, this script applies the
adaptive-configuration rules of the paper:

1. pick the largest ``K_snapshot`` whose GPU->CPU snapshot still hides
   under one iteration's forward+backward time (zero stall);
2. pick ``K_persist`` and the checkpoint interval from the persist-phase
   lower bound and the Young-Daly optimum for the cluster's fault rate;
3. report the sharding policy's effect on the bottleneck rank.

Run:  python examples/cluster_checkpoint_planning.py [--gpus 64] [--mtbf-hours 8]
"""

from __future__ import annotations

import argparse

from repro.analysis import render_kv, render_table
from repro.core import ShardingPolicy, optimal_interval
from repro.distsim import (
    A800_CLUSTER,
    GB,
    ParallelConfig,
    checkpoint_cost,
    llama_moe,
    min_checkpoint_interval_iterations,
    pec_plan_for,
)


def plan(num_gpus: int, mtbf_hours: float) -> None:
    spec = llama_moe(num_experts=num_gpus)
    parallel = ParallelConfig(d_dp=num_gpus, d_ep=num_gpus, tokens_per_gpu=16 * 1024)
    cluster = A800_CLUSTER
    topology = parallel.topology(cluster.gpus_per_node)

    from repro.distsim import iteration_times

    times = iteration_times(spec, parallel, cluster)
    iteration_seconds = times.fb + times.update

    # --- rule 1: largest K_snapshot with full overlap -------------------
    chosen_k_snapshot = 1
    ladder_rows = []
    for k in range(1, spec.num_experts + 1):
        cost = checkpoint_cost(
            spec, topology, cluster, ShardingPolicy.EE_AN,
            pec_plan=pec_plan_for(spec, k),
        )
        overlapped = cost.snapshot_seconds <= times.fb
        if overlapped:
            chosen_k_snapshot = k
        if k in (1, 2, 4, 8, 16, 32, 64, spec.num_experts):
            ladder_rows.append(
                (k, cost.snapshot_seconds, "yes" if overlapped else "NO")
            )

    # --- rule 2: K_persist = 1 and the interval bounds ------------------
    k_persist = 1
    persist_cost = checkpoint_cost(
        spec, topology, cluster, ShardingPolicy.EE_AN,
        pec_plan=pec_plan_for(spec, chosen_k_snapshot, k_persist),
    )
    min_interval = min_checkpoint_interval_iterations(
        persist_cost.persist_seconds, iteration_seconds
    )
    fault_rate = iteration_seconds / (mtbf_hours * 3600.0)  # faults/iteration
    young_daly = optimal_interval(o_save=0.0 + 0.05, fault_rate=fault_rate)
    recommended = max(min_interval, young_daly)

    # --- rule 3: sharding policy comparison ------------------------------
    policy_rows = []
    for policy in ShardingPolicy:
        cost = checkpoint_cost(
            spec, topology, cluster, policy,
            pec_plan=pec_plan_for(spec, chosen_k_snapshot, k_persist),
        )
        policy_rows.append((policy.value, cost.bottleneck_rank_bytes / GB,
                            cost.snapshot_seconds))

    print(render_kv(
        f"Deployment: {spec.name} on {num_gpus}x{cluster.gpu.name}",
        [
            ("iteration time (s)", iteration_seconds),
            ("F&B overlap budget (s)", times.fb),
            ("MTBF (hours)", mtbf_hours),
            ("fault rate (faults/iter)", fault_rate),
        ],
    ))
    print("\nSnapshot overlap ladder (EE+AN sharding):")
    print(render_table(["K_snapshot", "snapshot s", "fully overlapped"], ladder_rows, precision=2))
    print("\nSharding policies at the chosen K:")
    print(render_table(["policy", "bottleneck GB", "snapshot s"], policy_rows, precision=2))
    print(render_kv(
        "\nRecommended configuration",
        [
            ("K_snapshot", chosen_k_snapshot),
            ("K_persist", k_persist),
            ("persist time (s)", persist_cost.persist_seconds),
            ("min interval (iters, persist-bound)", min_interval),
            ("Young-Daly interval (iters)", young_daly),
            ("recommended I_ckpt (iters)", recommended),
        ],
    ))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=64)
    parser.add_argument("--mtbf-hours", type=float, default=8.0)
    args = parser.parse_args()
    plan(args.gpus, args.mtbf_hours)


if __name__ == "__main__":
    main()
