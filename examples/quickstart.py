"""Quickstart: PEC checkpointing and fault recovery in ~60 lines.

Trains a small MoE language model with the MoC-System checkpoint manager
(PEC with K_snapshot=2 / K_persist=1, two-level recovery), kills "node 0"
mid-training, recovers, and reports the Proportion of Lost Tokens.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import (
    Adam,
    FaultSchedule,
    MarkovCorpus,
    MoCCheckpointManager,
    MoCConfig,
    MoEModelConfig,
    MoETransformerLM,
    PECConfig,
    Trainer,
    TrainerConfig,
    TwoLevelConfig,
)
from repro.train import lm_validation_loss


def main() -> None:
    # 1. A small MoE transformer: 2 layers, the second carries 8 experts.
    model_config = MoEModelConfig(
        vocab_size=48, max_seq_len=20, dim=24,
        num_layers=2, num_heads=2, num_experts=8, top_k=2, seed=1,
    )
    model = MoETransformerLM(model_config)
    optimizer = Adam(model.named_parameters(), lr=3e-3)
    corpus = MarkovCorpus(vocab_size=48, num_domains=4, seq_len=20, seed=3)

    # 2. MoC-System: snapshot 2 experts per layer to CPU memory each
    #    checkpoint, persist 1 of them to storage, recover surviving
    #    nodes' experts from memory (two-level recovery).
    moc_config = MoCConfig(
        pec=PECConfig(k_snapshot=2, k_persist=1),
        two_level=TwoLevelConfig(checkpoint_interval=8, two_level_recovery=True),
    )

    with tempfile.TemporaryDirectory() as storage:
        manager = MoCCheckpointManager(model, optimizer, moc_config, disk_root=storage)
        validation = corpus.validation_set(3, 4)
        trainer = Trainer(
            model,
            optimizer,
            corpus,
            TrainerConfig(total_iterations=80, batch_size=4),
            manager=manager,
            fault_schedule=FaultSchedule.midpoint(80),  # node 0 dies at iter 40
            val_fn=lambda: lm_validation_loss(model, validation),
        )
        history = trainer.run()

    print(f"iterations executed (incl. replay): {history.executed_iterations}")
    print(f"fault struck at iteration:          {history.fault_iterations[0]}")
    recovery = history.recoveries[0]
    print(f"resumed from checkpoint iteration:  {recovery.resume_iteration}")
    memory_tier = sum(
        1 for tier in recovery.plan.tier_per_expert.values() if tier == "snapshot"
    )
    print(f"experts recovered from CPU memory:  {memory_tier}"
          f" / {len(recovery.plan.tier_per_expert)}")
    print(f"proportion of lost tokens (PLT):    {100 * history.final_plt:.2f}%")
    print(f"final validation loss:              {history.final_val_loss:.4f}")
    print(f"persisted checkpoint bytes:         {manager.disk_store.total_bytes():,}")


if __name__ == "__main__":
    main()
