"""Fault-tolerant fine-tuning with PEC (the Table 4 workflow).

Pre-trains a small MoE LM, then fine-tunes it on a shifted domain under
the paper's four regimes and evaluates a downstream probe suite —
showing that PEC checkpointing (saving 1/8 of experts) matches
full-state checkpointing through a mid-fine-tuning fault.

Run:  python examples/finetune_with_pec.py
"""

from __future__ import annotations

from repro import Adam, MarkovCorpus, MoEModelConfig, MoETransformerLM
from repro.analysis import render_table
from repro.train import (
    FinetuneVariant,
    evaluate_probe_suite,
    make_finetune_corpus,
    make_probe_suite,
    run_finetune,
)

MODEL_CONFIG = MoEModelConfig(
    vocab_size=48, max_seq_len=20, dim=24,
    num_layers=2, num_heads=2, num_experts=8, top_k=2, seed=1,
)


def make_model() -> MoETransformerLM:
    return MoETransformerLM(MODEL_CONFIG)


def main() -> None:
    base_corpus = MarkovCorpus(vocab_size=48, num_domains=4, seq_len=20, seed=3)
    model = make_model()
    optimizer = Adam(model.named_parameters(), lr=3e-3)
    print("pre-training base model ...")
    for iteration in range(1, 81):
        tokens, targets = base_corpus.batch(iteration, 4)
        model.set_routing_step(iteration)
        optimizer.zero_grad()
        model.loss(tokens, targets).backward()
        optimizer.step()

    downstream_corpus = make_finetune_corpus(base_corpus)
    suite = make_probe_suite(
        downstream_corpus, num_tasks=6, examples_per_task=12,
        num_choices=4, prompt_len=10, cont_len=5,
    )

    rows = []
    for variant in (
        FinetuneVariant.BASE,
        FinetuneVariant.FT_WO_E,
        FinetuneVariant.FT_FULL,
        FinetuneVariant.FT_PEC,
    ):
        print(f"running {variant.value} ...")
        result = run_finetune(
            model, make_model, downstream_corpus, variant,
            iterations=50, batch_size=4, lr=2e-3,
            checkpoint_interval=10, k_pec_fraction=8,
        )
        evaluation = evaluate_probe_suite(result.model, suite)
        faults = (
            len(result.history.fault_iterations) if result.history is not None else 0
        )
        rows.append((variant.value, 100 * evaluation.average, faults))

    print()
    print(render_table(["method", "downstream avg %", "faults survived"], rows, precision=2))
    print(
        "\nFT-PEC checkpoints 1/8 of the experts yet matches FT-Full through "
        "the same midpoint fault; freezing experts entirely (FT-w.o.E) "
        "still beats the base model — expert parameters tolerate missing "
        "updates, which is exactly why PEC is safe."
    )


if __name__ == "__main__":
    main()
