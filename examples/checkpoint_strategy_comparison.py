"""Compare checkpointing strategies on one pre-training workload.

Runs the same faulty pre-training (2 faults) under four strategies —
the Megatron-DeepSpeed-style baseline (blocking full saving), PEC,
PEC + two-level recovery, and Dynamic-K — and prints validation loss,
PLT and persisted bytes per checkpoint for each.  This is the paper's
Figure 14(a) / Table 3 story as a runnable script.

Run:  python examples/checkpoint_strategy_comparison.py
"""

from __future__ import annotations

import tempfile

from repro import (
    Adam,
    FaultSchedule,
    MarkovCorpus,
    MoCCheckpointManager,
    MoCConfig,
    MoEModelConfig,
    MoETransformerLM,
    PECConfig,
    Trainer,
    TrainerConfig,
    TwoLevelConfig,
)
from repro.analysis import render_table
from repro.train import lm_validation_loss

NUM_EXPERTS = 8
TOTAL_ITERATIONS = 90

STRATEGIES = {
    "Baseline (full)": MoCConfig.baseline(NUM_EXPERTS, checkpoint_interval=10),
    "PEC (K=1)": MoCConfig(
        pec=PECConfig(k_snapshot=1, k_persist=1),
        two_level=TwoLevelConfig(checkpoint_interval=10, two_level_recovery=False),
    ),
    "PEC + two-level (4,1)": MoCConfig(
        pec=PECConfig(k_snapshot=4, k_persist=1),
        two_level=TwoLevelConfig(checkpoint_interval=10, two_level_recovery=True),
    ),
    "Dynamic-K": MoCConfig(
        pec=PECConfig(k_snapshot=4, k_persist=1, dynamic_k=True),
        two_level=TwoLevelConfig(checkpoint_interval=10, two_level_recovery=True),
    ),
}


def run_strategy(name: str, moc_config: MoCConfig):
    model_config = MoEModelConfig(
        vocab_size=48, max_seq_len=20, dim=24,
        num_layers=2, num_heads=2, num_experts=NUM_EXPERTS, top_k=2, seed=1,
    )
    model = MoETransformerLM(model_config)
    optimizer = Adam(model.named_parameters(), lr=3e-3)
    corpus = MarkovCorpus(vocab_size=48, num_domains=4, seq_len=20, seed=3)
    validation = corpus.validation_set(3, 4)
    with tempfile.TemporaryDirectory() as storage:
        manager = MoCCheckpointManager(model, optimizer, moc_config, disk_root=storage)
        trainer = Trainer(
            model, optimizer, corpus,
            TrainerConfig(total_iterations=TOTAL_ITERATIONS, batch_size=4),
            manager=manager,
            fault_schedule=FaultSchedule.periodic(30, TOTAL_ITERATIONS),
            val_fn=lambda: lm_validation_loss(model, validation),
        )
        history = trainer.run()
        # bytes written by the most recent (steady-state) checkpoint
        last_persist = history and manager.manifests[-1].persist_bytes()
    return {
        "val_loss": history.final_val_loss,
        "plt": history.final_plt,
        "persist_bytes": last_persist,
        "faults": len(history.fault_iterations),
        "k_final": (
            manager.dynamic_k.k if manager.dynamic_k is not None
            else moc_config.pec.k_persist
        ),
    }


def main() -> None:
    results = {name: run_strategy(name, config) for name, config in STRATEGIES.items()}
    baseline_bytes = results["Baseline (full)"]["persist_bytes"]
    rows = [
        (
            name,
            data["val_loss"],
            100 * data["plt"],
            data["persist_bytes"] / baseline_bytes,
            data["k_final"],
            data["faults"],
        )
        for name, data in results.items()
    ]
    print(
        render_table(
            ["strategy", "val loss", "PLT %", "ckpt size ratio", "final K", "faults"],
            rows,
            precision=3,
        )
    )
    print(
        "\nAll strategies survive the same two faults; PEC variants cut the "
        "persisted volume while holding validation loss."
    )


if __name__ == "__main__":
    main()
